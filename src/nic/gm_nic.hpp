// GM-style OS-bypass NIC model (Myrinet LANai running the GM MCP).
//
// Behavioural contract, matching the paper's description of GM:
//  * Sending: once a message descriptor is handed over, the NIC fragments
//    and streams it onto the wire *autonomously* — no host CPU, no
//    interrupts. The transmit scheduler works at fragment granularity:
//    control messages (RTS/CTS, single small packets) have priority and
//    slip in between data fragments, exactly like a packetized network —
//    a control packet never waits behind a whole queued message. Data
//    messages transmit their fragments contiguously, FIFO per NIC.
//  * Receiving: fragments are assembled and deposited into host memory by
//    NIC DMA; arrival produces an entry in a user-level event queue that
//    the *library* polls. No interrupt is ever raised.
//
// On a lossy fabric (FaultSpec) the NIC additionally runs a per-fragment
// ack protocol: the receive side acknowledges and de-duplicates fragments
// in firmware (no host cost), while the transmit side tracks unacked
// fragments and arms a backoff timer. Crucially the NIC *cannot*
// retransmit on its own — GM progress is library-driven — so a timeout
// only queues a Timeout event; the library reacts during a later MPI call
// via planRetransmit()/executeRetransmit(), paying host CPU to re-stage
// the data.
//
// Everything protocol-level (eager vs rendezvous, matching) lives above,
// in transport::GmEndpoint — the NIC is a packet engine.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/latency_recorder.hpp"
#include "common/units.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "transport/payload_pool.hpp"
#include "transport/reliability.hpp"
#include "transport/wire.hpp"

namespace comb::nic {

/// A completed NIC-level event, visible to the library on poll.
struct GmEvent {
  enum class Type {
    MsgArrived,  ///< a complete message (all fragments) was DMA'd to host
    SendDone,    ///< outbound DMA for msgId finished (buffer reusable)
    Timeout,     ///< msgId has unacked fragments; the library must act
  };
  Type type = Type::MsgArrived;
  // For MsgArrived: the message's protocol description (from fragment 0).
  transport::WireKind kind = transport::WireKind::Eager;
  std::uint64_t msgId = 0;
  mpi::Envelope env;
  Bytes msgBytes = 0;
  std::uint64_t senderHandle = 0;
  std::uint64_t recvHandle = 0;
  std::uint64_t matchSeq = 0;
  transport::DataBuffer data;
  net::NodeId srcNode = -1;
  /// When the event entered the user-level queue; pop() records the
  /// queue dwell time (GM's poll lag — its defining tail behaviour).
  double queuedAt = 0;
};

class GmNic {
 public:
  GmNic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node,
        transport::ReliabilityConfig rel = {});
  GmNic(const GmNic&) = delete;
  GmNic& operator=(const GmNic&) = delete;

  /// Hand a message to the NIC for autonomous transmission. `wireBytes`
  /// is what travels (control messages are small); `msgBytes` is the
  /// declared MPI message length carried in the metadata. If
  /// `reportSendDone`, a SendDone event is queued when the last fragment
  /// has left host memory (on a lossy fabric: when every fragment has
  /// been acked). Returns the NIC-level message id.
  std::uint64_t sendMessage(net::NodeId dst, transport::WireKind kind,
                            const mpi::Envelope& env, Bytes wireBytes,
                            Bytes msgBytes, transport::DataBuffer data,
                            std::uint64_t senderHandle,
                            std::uint64_t recvHandle, bool reportSendDone,
                            std::uint64_t matchSeq = 0);

  /// Poll the user-level event queue (library context; zero cost here —
  /// the caller charges it).
  std::optional<GmEvent> pop();

  /// Packet entry point — wire this as the node's fabric delivery sink.
  void deliver(net::Packet p);

  bool hasEvents() const { return !events_.empty(); }
  net::NodeId node() const { return node_; }
  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t messagesDelivered() const { return messagesDelivered_; }

  /// Set a hook invoked whenever an event is queued (the endpoint uses it
  /// to version its activity signal).
  void setEventHook(std::function<void()> hook) {
    eventHook_ = std::move(hook);
  }

  // --- reliability (library-facing) --------------------------------------
  /// True when the fabric can lose packets and the ack protocol runs.
  bool reliable() const { return reliable_; }

  struct RetransmitPlan {
    transport::WireKind kind;     ///< what the message is (cost attribution)
    Bytes missingBytes = 0;       ///< payload bytes to re-stage
    int retries = 0;              ///< rounds already spent
    bool budgetExhausted = false; ///< retries >= maxRetries: abort the run
  };
  /// Inspect a Timeout event's message. Returns nullopt when the message
  /// has been fully acked in the meantime (stale timeout — no-op).
  std::optional<RetransmitPlan> planRetransmit(std::uint64_t msgId) const;
  /// Re-enqueue the missing fragments of msgId and re-arm its timer with
  /// one more round of backoff. Library context; the caller has already
  /// charged the host CPU per its plan.
  void executeRetransmit(std::uint64_t msgId);

  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeoutWakeups() const { return timeoutWakeups_; }
  std::uint64_t duplicatesFiltered() const { return duplicatesFiltered_; }

 private:
  struct TxMsg {
    net::NodeId dst = -1;
    std::uint64_t msgId = 0;
    net::PayloadRef<transport::WirePayload> meta;  ///< template for frags
    Bytes wireBytes = 0;
    std::uint32_t fragCount = 1;
    std::uint32_t nextFrag = 0;
    bool reportSendDone = false;
    bool control = false;
    /// Retransmission: explicit fragment indices to send (empty =
    /// initial transmission, all fragments in order).
    std::vector<std::uint32_t> fragList;
  };

  /// Sender-side reliability record, one per in-flight tracked message.
  struct Unacked {
    net::NodeId dst = -1;
    transport::WireKind kind = transport::WireKind::Eager;
    Bytes wireBytes = 0;
    std::uint32_t fragCount = 1;
    std::vector<bool> acked;
    std::uint32_t ackedCount = 0;
    int retries = 0;
    bool reportSendDone = false;
    bool timeoutQueued = false;  ///< Timeout event awaiting the library
    sim::EventHandle timer;
    /// Retained metadata so missing fragments can be re-staged.
    net::PayloadRef<transport::WirePayload> meta;
  };

  void pushEvent(GmEvent ev);
  /// Transmit scheduler: one fragment at a time; control queue first.
  void pumpTx();
  void injectFragment(TxMsg& msg);
  Bytes fragPayloadBytes(Bytes wireBytes, std::uint32_t frag) const;
  void armTimer(std::uint64_t msgId, Time at);
  void onTimer(std::uint64_t msgId);
  void handleAck(const transport::WirePayload& ack);
  void sendAck(net::NodeId dst, std::uint64_t msgId, std::uint32_t fragIndex);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId node_;
  transport::ReliabilityConfig rel_;
  bool reliable_ = false;
  /// Registry counters, cached at construction (no lookup per event).
  struct NicCounters {
    metrics::Counter& sent;
    metrics::Counter& delivered;
    metrics::Counter& fragsTx;
    metrics::Counter& retransmits;
    metrics::Counter& timeouts;
    metrics::Counter& duplicates;
  } counters_;
  /// "nic.gm.n<id>.event_wait": time each event sits in the user-level
  /// queue before the library polls it.
  LatencyRecorder& eventWaitLatency_;
  /// Fragment payloads recycle through this free list (zero steady-state
  /// allocation on the transmit path).
  transport::WirePayloadPool pool_;
  std::deque<GmEvent> events_;
  std::function<void()> eventHook_;

  std::deque<TxMsg> ctrlQ_;
  std::deque<TxMsg> dataQ_;
  bool txBusy_ = false;

  struct Assembly {
    std::uint32_t fragsSeen = 0;
  };
  std::map<std::pair<net::NodeId, std::uint64_t>, Assembly> assembling_;
  /// Metadata captured from fragment 0, released when the last fragment
  /// of the message lands.
  std::map<std::pair<net::NodeId, std::uint64_t>, GmEvent> pending_;

  // Reliability state (used only when reliable_).
  std::map<std::uint64_t, Unacked> unacked_;  ///< by msgId
  /// Receive-side firmware dedup: fragments already seen (and acked) per
  /// (source, message). Persists past delivery so late duplicates are
  /// re-acked without re-raising events.
  std::map<std::pair<net::NodeId, std::uint64_t>, std::set<std::uint32_t>>
      rxSeen_;

  std::uint64_t nextMsgId_ = 1;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t messagesDelivered_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeoutWakeups_ = 0;
  std::uint64_t duplicatesFiltered_ = 0;
};

}  // namespace comb::nic
