// Kernel-based Portals NIC model.
//
// The paper's Portals-on-Myrinet implementation does NOT use OS-bypass:
// the MCP is "simply a packet engine"; a Linux kernel module does
// reliability, flow control and message processing. We model that as:
//
//  * Transmit: each outgoing fragment costs kernel CPU (protocol work +
//    a copy through kernel buffers) charged as interrupt-level work that
//    preempts the application, then the fragment enters the wire. One
//    fragment is processed at a time (the kernel tx pump), pipelined with
//    wire serialization.
//  * Receive: every arriving fragment raises a host interrupt whose
//    service time covers protocol work plus the kernel->user (or
//    kernel-buffer) copy. The *handler* — supplied by the transport —
//    then performs matching at interrupt level. This autonomy is exactly
//    what gives Portals application offload in the paper, and the
//    interrupt+copy cost is what destroys its CPU availability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/latency_recorder.hpp"
#include "common/units.hpp"
#include "host/cpu.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "transport/payload_pool.hpp"
#include "transport/reliability.hpp"
#include "transport/wire.hpp"

namespace comb::nic {

struct PortalsNicConfig {
  /// Kernel CPU time to process one outbound fragment (protocol,
  /// descriptor handling), excluding the per-byte copy.
  Time perFragTx = 9e-6;
  /// Kernel CPU time per received-fragment interrupt (interrupt entry/exit
  /// plus protocol), excluding the per-byte copy.
  Time perFragRx = 20e-6;
  /// Rate of kernel-buffer copies, charged per byte on both paths.
  Rate kernelCopyRate = 280e6;
};

class PortalsNic {
 public:
  /// `rxHandler` runs at interrupt level after each fragment's service
  /// time; it receives the fragment payload and source node.
  using RxHandler =
      std::function<void(const transport::WirePayload&, net::NodeId)>;
  /// Invoked at kernel level when the last fragment of msgId entered the
  /// wire.
  using TxDoneHandler = std::function<void(std::uint64_t msgId)>;

  PortalsNic(sim::Simulator& sim, net::Fabric& fabric, host::Cpu& cpu,
             net::NodeId node, PortalsNicConfig cfg,
             transport::ReliabilityConfig rel = {});
  PortalsNic(const PortalsNic&) = delete;
  PortalsNic& operator=(const PortalsNic&) = delete;

  void setRxHandler(RxHandler h) { rxHandler_ = std::move(h); }
  void setTxDoneHandler(TxDoneHandler h) { txDone_ = std::move(h); }

  /// Queue a message for kernel transmission. Returns its msgId. The
  /// kernel pump charges CPU per fragment and injects them in order.
  std::uint64_t sendMessage(net::NodeId dst, transport::WireKind kind,
                            const mpi::Envelope& env, Bytes wireBytes,
                            Bytes msgBytes, transport::DataBuffer data,
                            std::uint64_t senderHandle,
                            std::uint64_t recvHandle);

  /// Packet entry point — wire as the node's fabric delivery sink.
  void deliver(net::Packet p);

  net::NodeId node() const { return node_; }
  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t fragmentsReceived() const { return fragmentsReceived_; }
  const PortalsNicConfig& config() const { return cfg_; }

  /// True when the fabric can lose packets and the ack protocol runs.
  /// Unlike GM, retransmission here is fully NIC/kernel-resident: the
  /// fragments stay in NIC buffers and a timeout replays the missing ones
  /// autonomously, with zero host CPU and no library involvement.
  bool reliable() const { return reliable_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeoutWakeups() const { return timeoutWakeups_; }
  std::uint64_t duplicatesFiltered() const { return duplicatesFiltered_; }

 private:
  struct TxFrag {
    net::NodeId dst;
    Bytes fragBytes;
    net::PayloadRef<transport::WirePayload> payload;
    bool lastOfMessage;
    std::uint64_t msgId;
    /// When the fragment entered the kernel tx queue; the pump records
    /// the dwell time (kernel queueing is Portals' tx tail signal).
    Time enqueuedAt = 0;
  };

  /// Sender-side reliability record: fragments retained in NIC buffers
  /// for autonomous replay.
  struct Unacked {
    net::NodeId dst = -1;
    std::vector<net::PayloadRef<transport::WirePayload>> frags;
    std::vector<Bytes> fragBytes;
    std::vector<bool> acked;
    std::uint32_t ackedCount = 0;
    int retries = 0;
    sim::EventHandle timer;
  };

  void pumpTx();
  void armTimer(std::uint64_t msgId);
  void onTimer(std::uint64_t msgId);
  void onAck(const transport::WirePayload& ack);
  /// MCP-generated ack: injected straight onto the wire, zero host CPU.
  void sendAck(net::NodeId dst, std::uint64_t msgId, std::uint32_t fragIndex);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  host::Cpu& cpu_;
  net::NodeId node_;
  PortalsNicConfig cfg_;
  /// Registry counters, cached at construction (no lookup per fragment).
  struct NicCounters {
    metrics::Counter& sent;
    metrics::Counter& fragsTx;
    metrics::Counter& fragsRx;
    metrics::Counter& retransmits;
    metrics::Counter& timeouts;
    metrics::Counter& duplicates;
  } counters_;
  /// "nic.ptl.n<id>.tx_queue_wait": kernel tx-queue dwell per fragment.
  LatencyRecorder& txQueueWaitLatency_;
  RxHandler rxHandler_;
  TxDoneHandler txDone_;
  /// Fragment payloads recycle through this free list (zero steady-state
  /// allocation on the transmit path).
  transport::WirePayloadPool pool_;

  std::deque<TxFrag> txQueue_;
  bool txBusy_ = false;
  std::uint64_t nextMsgId_ = 1;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t fragmentsReceived_ = 0;

  // Reliability state (used only when reliable_).
  transport::ReliabilityConfig rel_;
  bool reliable_ = false;
  std::map<std::uint64_t, Unacked> unacked_;  ///< by msgId
  /// Receive-side dedup in the MCP: fragments already seen (and acked)
  /// per (source, message). Persists past delivery so late duplicates are
  /// re-acked without re-raising interrupts.
  std::map<std::pair<net::NodeId, std::uint64_t>, std::set<std::uint32_t>>
      rxSeen_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeoutWakeups_ = 0;
  std::uint64_t duplicatesFiltered_ = 0;
};

}  // namespace comb::nic
