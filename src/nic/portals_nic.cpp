#include "nic/portals_nic.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::nic {

using transport::WireKind;
using transport::WirePayload;

namespace {

metrics::Counter& nicCounter(sim::Simulator& sim, net::NodeId node,
                             const char* metric) {
  return sim.metrics().counter(strFormat("nic.ptl.n%d.%s", node, metric));
}

}  // namespace

PortalsNic::PortalsNic(sim::Simulator& sim, net::Fabric& fabric,
                       host::Cpu& cpu, net::NodeId node, PortalsNicConfig cfg,
                       transport::ReliabilityConfig rel)
    : sim_(sim), fabric_(fabric), cpu_(cpu), node_(node), cfg_(cfg),
      counters_{nicCounter(sim, node, "messages_sent"),
                nicCounter(sim, node, "frags_tx"),
                nicCounter(sim, node, "frags_rx"),
                nicCounter(sim, node, "retransmits"),
                nicCounter(sim, node, "timeout_wakeups"),
                nicCounter(sim, node, "duplicates_filtered")},
      txQueueWaitLatency_(sim.metrics().latency(
          strFormat("nic.ptl.n%d.tx_queue_wait", node))),
      rel_(rel), reliable_(fabric.lossy()) {
  COMB_REQUIRE(cfg.kernelCopyRate > 0.0, "kernelCopyRate must be positive");
}

std::uint64_t PortalsNic::sendMessage(net::NodeId dst, WireKind kind,
                                      const mpi::Envelope& env,
                                      Bytes wireBytes, Bytes msgBytes,
                                      transport::DataBuffer data,
                                      std::uint64_t senderHandle,
                                      std::uint64_t recvHandle) {
  const std::uint64_t msgId = nextMsgId_++;
  ++messagesSent_;
  counters_.sent.add();
  const Bytes mtu = fabric_.mtu();
  const auto fragCount = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (wireBytes + mtu - 1) / mtu));
  Unacked* u = nullptr;
  if (reliable_) {
    u = &unacked_[msgId];
    u->dst = dst;
    u->acked.assign(fragCount, false);
  }
  Bytes remaining = wireBytes;
  for (std::uint32_t i = 0; i < fragCount; ++i) {
    auto wp = pool_.acquire();
    wp->kind = kind;
    wp->msgId = msgId;
    wp->fragIndex = i;
    wp->fragCount = fragCount;
    wp->env = env;
    wp->msgBytes = msgBytes;
    wp->senderHandle = senderHandle;
    wp->recvHandle = recvHandle;
    if (i == 0) wp->data = data;
    const Bytes fragBytes = std::min(remaining, mtu);
    remaining -= fragBytes;
    if (u != nullptr) {
      // Retain the fragment in NIC buffers for autonomous replay.
      u->frags.push_back(wp);
      u->fragBytes.push_back(fragBytes);
    }
    txQueue_.push_back(TxFrag{dst, fragBytes, std::move(wp),
                              i + 1 == fragCount, msgId, sim_.now()});
  }
  COMB_ASSERT(remaining == 0, "fragmentation lost bytes");
  pumpTx();
  return msgId;
}

void PortalsNic::pumpTx() {
  if (txBusy_ || txQueue_.empty()) return;
  txBusy_ = true;
  TxFrag frag = std::move(txQueue_.front());
  txQueue_.pop_front();
  counters_.fragsTx.add();
  txQueueWaitLatency_.record(sim_.now() - frag.enqueuedAt);
  sim_.emitTrace(sim::TraceCategory::NicEvent, node_, "tx-frag",
                 static_cast<double>(frag.fragBytes));
  const Time service =
      cfg_.perFragTx +
      static_cast<Time>(frag.fragBytes) / cfg_.kernelCopyRate;
  cpu_.raiseInterrupt(service, [this, frag = std::move(frag)] {
    fabric_.inject(node_, frag.dst, frag.fragBytes, frag.payload);
    if (frag.lastOfMessage) {
      if (reliable_ && unacked_.count(frag.msgId) != 0) {
        // The ack protocol owns completion: txDone fires on full ack and
        // the retransmission clock starts once the DMA has drained.
        armTimer(frag.msgId);
      } else if (txDone_) {
        txDone_(frag.msgId);
      }
    }
    txBusy_ = false;
    pumpTx();
  });
}

void PortalsNic::armTimer(std::uint64_t msgId) {
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return;  // fully acked already
  Time rto = rel_.ackTimeout;
  for (int i = 0; i < it->second.retries; ++i) rto *= rel_.backoff;
  it->second.timer.cancel();
  it->second.timer = sim_.scheduleAt(fabric_.uplink(node_).freeAt() + rto,
                                     [this, msgId] { onTimer(msgId); });
}

void PortalsNic::onTimer(std::uint64_t msgId) {
  ++timeoutWakeups_;
  counters_.timeouts.add();
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return;  // stale: fully acked meanwhile
  Unacked& u = it->second;
  if (u.retries >= rel_.maxRetries)
    throw comb::Error(strFormat(
        "Portals: retransmit budget exhausted for message %llu after %d "
        "rounds",
        static_cast<unsigned long long>(msgId), u.retries));
  ++u.retries;
  // NIC-resident replay: the MCP re-injects the missing fragments from
  // its retained buffers — no interrupt, no kernel work, no host CPU.
  // This is the structural difference from GM, where a timeout must wait
  // for the library to poll.
  std::uint64_t count = 0;
  for (std::uint32_t i = 0; i < u.frags.size(); ++i) {
    if (u.acked[i]) continue;
    fabric_.inject(node_, u.dst, u.fragBytes[i], u.frags[i]);
    ++count;
  }
  COMB_ASSERT(count > 0, "timeout with nothing missing");
  retransmits_ += count;
  counters_.retransmits.add(count);
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Fault, node_, "ptl:retransmit",
                   static_cast<double>(count));
  armTimer(msgId);
}

void PortalsNic::sendAck(net::NodeId dst, std::uint64_t msgId,
                         std::uint32_t fragIndex) {
  auto wp = pool_.acquire();
  wp->kind = WireKind::Ack;
  wp->msgId = msgId;
  wp->ackFragIndex = fragIndex;
  fabric_.inject(node_, dst, rel_.ackBytes, std::move(wp));
}

void PortalsNic::onAck(const WirePayload& ack) {
  auto it = unacked_.find(ack.msgId);
  if (it == unacked_.end()) return;  // duplicate ack after completion
  Unacked& u = it->second;
  if (ack.ackFragIndex >= u.acked.size() || u.acked[ack.ackFragIndex]) return;
  u.acked[ack.ackFragIndex] = true;
  if (++u.ackedCount < u.acked.size()) return;
  u.timer.cancel();
  const std::uint64_t msgId = ack.msgId;
  unacked_.erase(it);
  if (txDone_) txDone_(msgId);
}

void PortalsNic::deliver(net::Packet p) {
  const auto* wp = net::payloadAs<WirePayload>(p);
  COMB_ASSERT(wp != nullptr, "Portals NIC received a non-wire packet");
  if (reliable_) {
    if (wp->kind == WireKind::Ack) {
      // Acks terminate in the MCP — no interrupt, no kernel work.
      if (!p.corrupted) onAck(*wp);
      return;
    }
    if (p.corrupted) {
      // Reliability lives in the kernel here: even a fragment that fails
      // its checksum costs an interrupt before being thrown away.
      cpu_.raiseInterrupt(cfg_.perFragRx, [] {});
      return;
    }
    auto& seen = rxSeen_[{p.src, wp->msgId}];
    if (!seen.insert(wp->fragIndex).second) {
      // Duplicate: the MCP recognises the sequence number and re-acks
      // autonomously (the original ack may have been lost) — free.
      ++duplicatesFiltered_;
      counters_.duplicates.add();
      sendAck(p.src, wp->msgId, wp->fragIndex);
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Fault, node_, "ptl:dup",
                       static_cast<double>(wp->fragIndex));
      return;
    }
  }
  ++fragmentsReceived_;
  counters_.fragsRx.add();
  sim_.emitTrace(sim::TraceCategory::NicEvent, node_, "rx-frag",
                 static_cast<double>(p.wireBytes));
  // Service = interrupt + protocol + copy of this fragment through kernel
  // buffers. The transport's handler runs at the end of service, still at
  // interrupt level (matching happens in the kernel).
  const Bytes headerAdj =
      std::min<Bytes>(p.wireBytes, fabric_.perPacketHeader());
  const Bytes fragBytes = p.wireBytes - headerAdj;
  const Time service =
      cfg_.perFragRx + static_cast<Time>(fragBytes) / cfg_.kernelCopyRate;
  cpu_.raiseInterrupt(service, [this, payload = p.payload, src = p.src] {
    const auto* frag = net::payloadAs<WirePayload>(payload);
    COMB_ASSERT(frag != nullptr, "payload type changed in flight");
    if (reliable_) {
      // The fragment is safely in kernel buffers: ack it now. Sent from
      // the MCP directly, so the ack itself costs no further host CPU.
      sendAck(src, frag->msgId, frag->fragIndex);
    }
    if (rxHandler_) rxHandler_(*frag, src);
  });
}

}  // namespace comb::nic
