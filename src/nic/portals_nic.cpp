#include "nic/portals_nic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace comb::nic {

using transport::WireKind;
using transport::WirePayload;

PortalsNic::PortalsNic(sim::Simulator& sim, net::Fabric& fabric,
                       host::Cpu& cpu, net::NodeId node, PortalsNicConfig cfg)
    : sim_(sim), fabric_(fabric), cpu_(cpu), node_(node), cfg_(cfg) {
  COMB_REQUIRE(cfg.kernelCopyRate > 0.0, "kernelCopyRate must be positive");
}

std::uint64_t PortalsNic::sendMessage(net::NodeId dst, WireKind kind,
                                      const mpi::Envelope& env,
                                      Bytes wireBytes, Bytes msgBytes,
                                      transport::DataBuffer data,
                                      std::uint64_t senderHandle,
                                      std::uint64_t recvHandle) {
  const std::uint64_t msgId = nextMsgId_++;
  ++messagesSent_;
  const Bytes mtu = fabric_.mtu();
  const auto fragCount = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (wireBytes + mtu - 1) / mtu));
  Bytes remaining = wireBytes;
  for (std::uint32_t i = 0; i < fragCount; ++i) {
    auto wp = std::make_shared<WirePayload>();
    wp->kind = kind;
    wp->msgId = msgId;
    wp->fragIndex = i;
    wp->fragCount = fragCount;
    wp->env = env;
    wp->msgBytes = msgBytes;
    wp->senderHandle = senderHandle;
    wp->recvHandle = recvHandle;
    if (i == 0) wp->data = data;
    const Bytes fragBytes = std::min(remaining, mtu);
    remaining -= fragBytes;
    txQueue_.push_back(
        TxFrag{dst, fragBytes, std::move(wp), i + 1 == fragCount, msgId});
  }
  COMB_ASSERT(remaining == 0, "fragmentation lost bytes");
  pumpTx();
  return msgId;
}

void PortalsNic::pumpTx() {
  if (txBusy_ || txQueue_.empty()) return;
  txBusy_ = true;
  TxFrag frag = std::move(txQueue_.front());
  txQueue_.pop_front();
  const Time service =
      cfg_.perFragTx +
      static_cast<Time>(frag.fragBytes) / cfg_.kernelCopyRate;
  cpu_.raiseInterrupt(service, [this, frag = std::move(frag)] {
    fabric_.inject(node_, frag.dst, frag.fragBytes, frag.payload);
    if (frag.lastOfMessage && txDone_) txDone_(frag.msgId);
    txBusy_ = false;
    pumpTx();
  });
}

void PortalsNic::deliver(net::Packet p) {
  const auto* wp = net::payloadAs<WirePayload>(p);
  COMB_ASSERT(wp != nullptr, "Portals NIC received a non-wire packet");
  ++fragmentsReceived_;
  // Service = interrupt + protocol + copy of this fragment through kernel
  // buffers. The transport's handler runs at the end of service, still at
  // interrupt level (matching happens in the kernel).
  const Bytes headerAdj =
      std::min<Bytes>(p.wireBytes, fabric_.perPacketHeader());
  const Bytes fragBytes = p.wireBytes - headerAdj;
  const Time service =
      cfg_.perFragRx + static_cast<Time>(fragBytes) / cfg_.kernelCopyRate;
  cpu_.raiseInterrupt(service, [this, payload = p.payload, src = p.src] {
    const auto* frag = dynamic_cast<const WirePayload*>(payload.get());
    COMB_ASSERT(frag != nullptr, "payload type changed in flight");
    if (rxHandler_) rxHandler_(*frag, src);
  });
}

}  // namespace comb::nic
