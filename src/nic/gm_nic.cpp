#include "nic/gm_nic.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::nic {

using transport::WireKind;
using transport::WirePayload;

namespace {

metrics::Counter& nicCounter(sim::Simulator& sim, net::NodeId node,
                             const char* metric) {
  return sim.metrics().counter(strFormat("nic.gm.n%d.%s", node, metric));
}

}  // namespace

GmNic::GmNic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node,
             transport::ReliabilityConfig rel)
    : sim_(sim), fabric_(fabric), node_(node), rel_(rel),
      reliable_(fabric.lossy()),
      counters_{nicCounter(sim, node, "messages_sent"),
                nicCounter(sim, node, "messages_delivered"),
                nicCounter(sim, node, "frags_tx"),
                nicCounter(sim, node, "retransmits"),
                nicCounter(sim, node, "timeout_wakeups"),
                nicCounter(sim, node, "duplicates_filtered")},
      eventWaitLatency_(sim.metrics().latency(
          strFormat("nic.gm.n%d.event_wait", node))) {}

std::uint64_t GmNic::sendMessage(net::NodeId dst, WireKind kind,
                                 const mpi::Envelope& env, Bytes wireBytes,
                                 Bytes msgBytes, transport::DataBuffer data,
                                 std::uint64_t senderHandle,
                                 std::uint64_t recvHandle,
                                 bool reportSendDone,
                                 std::uint64_t matchSeq) {
  const std::uint64_t msgId = nextMsgId_++;
  ++messagesSent_;
  counters_.sent.add();
  const Bytes mtu = fabric_.mtu();

  TxMsg msg;
  msg.dst = dst;
  msg.msgId = msgId;
  msg.wireBytes = wireBytes;
  msg.fragCount = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (wireBytes + mtu - 1) / mtu));
  msg.reportSendDone = reportSendDone;
  msg.control = kind == WireKind::Rts || kind == WireKind::Cts;
  msg.meta = pool_.acquire();
  msg.meta->kind = kind;
  msg.meta->msgId = msgId;
  msg.meta->fragCount = msg.fragCount;
  msg.meta->env = env;
  msg.meta->msgBytes = msgBytes;
  msg.meta->senderHandle = senderHandle;
  msg.meta->recvHandle = recvHandle;
  msg.meta->matchSeq = matchSeq;
  msg.meta->data = std::move(data);

  if (reliable_ && kind != WireKind::Ack) {
    Unacked u;
    u.dst = dst;
    u.kind = kind;
    u.wireBytes = wireBytes;
    u.fragCount = msg.fragCount;
    u.acked.assign(msg.fragCount, false);
    u.reportSendDone = reportSendDone;
    u.meta = msg.meta;
    unacked_.emplace(msgId, std::move(u));
  }

  (msg.control ? ctrlQ_ : dataQ_).push_back(std::move(msg));
  pumpTx();
  return msgId;
}

Bytes GmNic::fragPayloadBytes(Bytes wireBytes, std::uint32_t frag) const {
  const Bytes mtu = fabric_.mtu();
  const Bytes offset = static_cast<Bytes>(frag) * mtu;
  return std::min(wireBytes - offset, mtu);
}

void GmNic::injectFragment(TxMsg& msg) {
  const std::uint32_t i = msg.fragList.empty()
                              ? msg.nextFrag
                              : msg.fragList[msg.nextFrag];
  ++msg.nextFrag;
  auto wp = pool_.acquire(*msg.meta);
  wp->fragIndex = i;
  if (i != 0) wp->data = nullptr;  // the whole buffer rides fragment 0
  fabric_.inject(node_, msg.dst, fragPayloadBytes(msg.wireBytes, i),
                 std::move(wp));
}

void GmNic::pumpTx() {
  if (txBusy_) return;
  std::deque<TxMsg>* q = nullptr;
  // Control packets have priority: they never wait behind a whole queued
  // data message, only (at most) behind the fragment currently going out.
  if (!ctrlQ_.empty()) q = &ctrlQ_;
  else if (!dataQ_.empty()) q = &dataQ_;
  if (!q) return;

  TxMsg& msg = q->front();
  counters_.fragsTx.add();
  // The outbound DMA window: the NIC streams this fragment from host
  // memory until the uplink finishes serializing it. Fragments serialize
  // one at a time (txBusy_), so the Begin/End pair cannot interleave.
  sim_.emitTraceBegin(sim::TraceCategory::NicEvent, node_, "dma",
                      static_cast<double>(msg.wireBytes));
  injectFragment(msg);
  const std::uint32_t fragsToSend =
      msg.fragList.empty() ? msg.fragCount
                           : static_cast<std::uint32_t>(msg.fragList.size());
  const bool msgDone = msg.nextFrag == fragsToSend;
  const Time dmaFree = fabric_.uplink(node_).freeAt();
  if (msgDone) {
    if (reliable_ && unacked_.count(msg.msgId) != 0) {
      // Ack protocol owns completion: SendDone fires on full ack, and the
      // retransmission clock starts once the DMA has drained.
      armTimer(msg.msgId, dmaFree);
    } else if (msg.reportSendDone) {
      // Outbound DMA completes when the last fragment has serialized.
      const std::uint64_t msgId = msg.msgId;
      sim_.scheduleAt(dmaFree, [this, msgId] {
        GmEvent ev;
        ev.type = GmEvent::Type::SendDone;
        ev.msgId = msgId;
        pushEvent(std::move(ev));
      });
    }
    q->pop_front();
  }
  // The next fragment (of this or another message) goes out when the
  // uplink finishes serializing this one.
  txBusy_ = true;
  sim_.scheduleAt(dmaFree, [this] {
    txBusy_ = false;
    sim_.emitTraceEnd(sim::TraceCategory::NicEvent, node_, "dma");
    pumpTx();
  });
}

void GmNic::armTimer(std::uint64_t msgId, Time at) {
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return;  // fully acked before the DMA drained
  Time rto = rel_.ackTimeout;
  for (int i = 0; i < it->second.retries; ++i) rto *= rel_.backoff;
  it->second.timer.cancel();
  it->second.timer =
      sim_.scheduleAt(at + rto, [this, msgId] { onTimer(msgId); });
}

void GmNic::onTimer(std::uint64_t msgId) {
  ++timeoutWakeups_;
  counters_.timeouts.add();
  auto it = unacked_.find(msgId);
  if (it == unacked_.end() || it->second.timeoutQueued) return;
  // GM progress is library-driven: the NIC cannot retransmit on its own.
  // Queue a Timeout event and wait for the library to poll it — the timer
  // is re-armed only once the retransmission actually goes out.
  it->second.timeoutQueued = true;
  GmEvent ev;
  ev.type = GmEvent::Type::Timeout;
  ev.msgId = msgId;
  pushEvent(std::move(ev));
}

std::optional<GmNic::RetransmitPlan> GmNic::planRetransmit(
    std::uint64_t msgId) const {
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return std::nullopt;  // acked meanwhile: stale
  const Unacked& u = it->second;
  RetransmitPlan plan;
  plan.kind = u.kind;
  plan.retries = u.retries;
  plan.budgetExhausted = u.retries >= rel_.maxRetries;
  for (std::uint32_t i = 0; i < u.fragCount; ++i)
    if (!u.acked[i]) plan.missingBytes += fragPayloadBytes(u.wireBytes, i);
  return plan;
}

void GmNic::executeRetransmit(std::uint64_t msgId) {
  auto it = unacked_.find(msgId);
  COMB_ASSERT(it != unacked_.end(), "retransmit of a fully-acked message");
  Unacked& u = it->second;
  COMB_ASSERT(u.retries < rel_.maxRetries, "retransmit budget exhausted");
  ++u.retries;
  u.timeoutQueued = false;

  TxMsg msg;
  msg.dst = u.dst;
  msg.msgId = msgId;
  msg.meta = u.meta;
  msg.wireBytes = u.wireBytes;
  msg.fragCount = u.fragCount;
  msg.control = u.kind == WireKind::Rts || u.kind == WireKind::Cts;
  for (std::uint32_t i = 0; i < u.fragCount; ++i)
    if (!u.acked[i]) msg.fragList.push_back(i);
  COMB_ASSERT(!msg.fragList.empty(), "retransmit with nothing missing");
  retransmits_ += msg.fragList.size();
  counters_.retransmits.add(msg.fragList.size());
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Fault, node_, "gm:retransmit",
                   static_cast<double>(msg.fragList.size()));
  (msg.control ? ctrlQ_ : dataQ_).push_back(std::move(msg));
  pumpTx();
}

void GmNic::handleAck(const WirePayload& ack) {
  auto it = unacked_.find(ack.msgId);
  if (it == unacked_.end()) return;  // duplicate ack after completion
  Unacked& u = it->second;
  if (ack.ackFragIndex >= u.fragCount || u.acked[ack.ackFragIndex]) return;
  u.acked[ack.ackFragIndex] = true;
  if (++u.ackedCount < u.fragCount) return;
  u.timer.cancel();
  const bool report = u.reportSendDone;
  unacked_.erase(it);
  if (report) {
    GmEvent ev;
    ev.type = GmEvent::Type::SendDone;
    ev.msgId = ack.msgId;
    pushEvent(std::move(ev));
  }
}

void GmNic::sendAck(net::NodeId dst, std::uint64_t msgId,
                    std::uint32_t fragIndex) {
  // Firmware-level ack: a tiny untracked control packet, free for the
  // host (the MCP generates it while depositing the fragment).
  TxMsg msg;
  msg.dst = dst;
  msg.msgId = nextMsgId_++;
  msg.wireBytes = rel_.ackBytes;
  msg.control = true;
  msg.meta = pool_.acquire();
  msg.meta->kind = WireKind::Ack;
  msg.meta->msgId = msgId;
  msg.meta->ackFragIndex = fragIndex;
  ctrlQ_.push_back(std::move(msg));
  pumpTx();
}

void GmNic::deliver(net::Packet p) {
  const auto* wp = net::payloadAs<WirePayload>(p);
  COMB_ASSERT(wp != nullptr, "GM NIC received a non-wire packet");
  if (reliable_) {
    if (wp->kind == WireKind::Ack) {
      // Acks are firmware-to-firmware and never acked themselves; a
      // corrupted ack is simply useless.
      if (!p.corrupted) handleAck(*wp);
      return;
    }
    if (p.corrupted) return;  // failed checksum: silence forces retransmit
    // Ack every healthy fragment — including duplicates, whose original
    // ack may have been the packet that was lost.
    sendAck(p.src, wp->msgId, wp->fragIndex);
    auto& seen = rxSeen_[{p.src, wp->msgId}];
    if (!seen.insert(wp->fragIndex).second) {
      ++duplicatesFiltered_;
      counters_.duplicates.add();
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Fault, node_, "gm:dup",
                       static_cast<double>(wp->fragIndex));
      return;
    }
  }
  auto key = std::pair{p.src, wp->msgId};
  Assembly& asmRec = assembling_[key];
  ++asmRec.fragsSeen;
  if (wp->fragIndex == 0) {
    // Stash message metadata from fragment 0. On a lossless fabric it
    // always arrives first (in-order delivery per path); under loss it may
    // arrive in any retransmission round, but exactly once (dedup above).
    GmEvent ev;
    ev.type = GmEvent::Type::MsgArrived;
    ev.kind = wp->kind;
    ev.msgId = wp->msgId;
    ev.env = wp->env;
    ev.msgBytes = wp->msgBytes;
    ev.senderHandle = wp->senderHandle;
    ev.recvHandle = wp->recvHandle;
    ev.matchSeq = wp->matchSeq;
    ev.data = wp->data;
    ev.srcNode = p.src;
    pending_[key] = std::move(ev);
  }
  if (asmRec.fragsSeen == wp->fragCount) {
    auto it = pending_.find(key);
    COMB_ASSERT(it != pending_.end(), "message completed without fragment 0");
    ++messagesDelivered_;
    counters_.delivered.add();
    pushEvent(std::move(it->second));
    pending_.erase(it);
    assembling_.erase(key);
  }
}

std::optional<GmEvent> GmNic::pop() {
  if (events_.empty()) return std::nullopt;
  GmEvent ev = std::move(events_.front());
  events_.pop_front();
  eventWaitLatency_.record(sim_.now() - ev.queuedAt);
  return ev;
}

void GmNic::pushEvent(GmEvent ev) {
  ev.queuedAt = sim_.now();
  if (sim_.tracing()) {
    const char* label = wireKindName(ev.kind);
    if (ev.type == GmEvent::Type::SendDone) label = "send-done";
    else if (ev.type == GmEvent::Type::Timeout) label = "timeout";
    sim_.emitTrace(sim::TraceCategory::NicEvent, node_, label,
                   static_cast<double>(ev.msgBytes));
  }
  events_.push_back(std::move(ev));
  if (eventHook_) eventHook_();
}

}  // namespace comb::nic
