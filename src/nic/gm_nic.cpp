#include "nic/gm_nic.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"

namespace comb::nic {

using transport::WireKind;
using transport::WirePayload;

GmNic::GmNic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node)
    : sim_(sim), fabric_(fabric), node_(node) {}

std::uint64_t GmNic::sendMessage(net::NodeId dst, WireKind kind,
                                 const mpi::Envelope& env, Bytes wireBytes,
                                 Bytes msgBytes, transport::DataBuffer data,
                                 std::uint64_t senderHandle,
                                 std::uint64_t recvHandle,
                                 bool reportSendDone,
                                 std::uint64_t matchSeq) {
  const std::uint64_t msgId = nextMsgId_++;
  ++messagesSent_;
  const Bytes mtu = fabric_.mtu();

  TxMsg msg;
  msg.dst = dst;
  msg.msgId = msgId;
  msg.wireBytes = wireBytes;
  msg.fragCount = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (wireBytes + mtu - 1) / mtu));
  msg.reportSendDone = reportSendDone;
  msg.control = kind == WireKind::Rts || kind == WireKind::Cts;
  msg.meta = std::make_shared<WirePayload>();
  msg.meta->kind = kind;
  msg.meta->msgId = msgId;
  msg.meta->fragCount = msg.fragCount;
  msg.meta->env = env;
  msg.meta->msgBytes = msgBytes;
  msg.meta->senderHandle = senderHandle;
  msg.meta->recvHandle = recvHandle;
  msg.meta->matchSeq = matchSeq;
  msg.meta->data = std::move(data);

  (msg.control ? ctrlQ_ : dataQ_).push_back(std::move(msg));
  pumpTx();
  return msgId;
}

void GmNic::injectFragment(TxMsg& msg) {
  const Bytes mtu = fabric_.mtu();
  const std::uint32_t i = msg.nextFrag++;
  auto wp = std::make_shared<WirePayload>(*msg.meta);
  wp->fragIndex = i;
  if (i != 0) wp->data = nullptr;  // the whole buffer rides fragment 0
  const Bytes offset = static_cast<Bytes>(i) * mtu;
  const Bytes fragBytes = std::min(msg.wireBytes - offset, mtu);
  fabric_.inject(node_, msg.dst, fragBytes, std::move(wp));
}

void GmNic::pumpTx() {
  if (txBusy_) return;
  std::deque<TxMsg>* q = nullptr;
  // Control packets have priority: they never wait behind a whole queued
  // data message, only (at most) behind the fragment currently going out.
  if (!ctrlQ_.empty()) q = &ctrlQ_;
  else if (!dataQ_.empty()) q = &dataQ_;
  if (!q) return;

  TxMsg& msg = q->front();
  injectFragment(msg);
  const bool msgDone = msg.nextFrag == msg.fragCount;
  const Time dmaFree = fabric_.uplink(node_).freeAt();
  if (msgDone) {
    if (msg.reportSendDone) {
      // Outbound DMA completes when the last fragment has serialized.
      const std::uint64_t msgId = msg.msgId;
      sim_.scheduleAt(dmaFree, [this, msgId] {
        GmEvent ev;
        ev.type = GmEvent::Type::SendDone;
        ev.msgId = msgId;
        pushEvent(std::move(ev));
      });
    }
    q->pop_front();
  }
  // The next fragment (of this or another message) goes out when the
  // uplink finishes serializing this one.
  txBusy_ = true;
  sim_.scheduleAt(dmaFree, [this] {
    txBusy_ = false;
    pumpTx();
  });
}

void GmNic::deliver(net::Packet p) {
  const auto* wp = net::payloadAs<WirePayload>(p);
  COMB_ASSERT(wp != nullptr, "GM NIC received a non-wire packet");
  auto key = std::pair{p.src, wp->msgId};
  Assembly& asmRec = assembling_[key];
  ++asmRec.fragsSeen;
  if (wp->fragIndex == 0) {
    // Stash message metadata from fragment 0. (Fragment 0 always arrives
    // first: in-order delivery per path.)
    GmEvent ev;
    ev.type = GmEvent::Type::MsgArrived;
    ev.kind = wp->kind;
    ev.msgId = wp->msgId;
    ev.env = wp->env;
    ev.msgBytes = wp->msgBytes;
    ev.senderHandle = wp->senderHandle;
    ev.recvHandle = wp->recvHandle;
    ev.matchSeq = wp->matchSeq;
    ev.data = wp->data;
    ev.srcNode = p.src;
    pending_[key] = std::move(ev);
  }
  if (asmRec.fragsSeen == wp->fragCount) {
    auto it = pending_.find(key);
    COMB_ASSERT(it != pending_.end(), "message completed without fragment 0");
    ++messagesDelivered_;
    pushEvent(std::move(it->second));
    pending_.erase(it);
    assembling_.erase(key);
  }
}

std::optional<GmEvent> GmNic::pop() {
  if (events_.empty()) return std::nullopt;
  GmEvent ev = std::move(events_.front());
  events_.pop_front();
  return ev;
}

void GmNic::pushEvent(GmEvent ev) {
  if (sim_.tracing()) {
    sim_.emitTrace(sim::TraceCategory::NicEvent, node_,
                   ev.type == GmEvent::Type::SendDone
                       ? "send-done"
                       : wireKindName(ev.kind),
                   static_cast<double>(ev.msgBytes));
  }
  events_.push_back(std::move(ev));
  if (eventHook_) eventHook_();
}

}  // namespace comb::nic
