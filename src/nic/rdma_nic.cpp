#include "nic/rdma_nic.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::nic {

using transport::WireKind;
using transport::WirePayload;

namespace {

metrics::Counter& nicCounter(sim::Simulator& sim, net::NodeId node,
                             const char* metric) {
  return sim.metrics().counter(strFormat("nic.rdma.n%d.%s", node, metric));
}

}  // namespace

RdmaNic::RdmaNic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node,
                 RdmaNicConfig cfg, transport::ReliabilityConfig rel)
    : sim_(sim), fabric_(fabric), node_(node), cfg_(cfg),
      counters_{nicCounter(sim, node, "messages_sent"),
                nicCounter(sim, node, "frags_tx"),
                nicCounter(sim, node, "frags_rx"),
                nicCounter(sim, node, "retransmits"),
                nicCounter(sim, node, "timeout_wakeups"),
                nicCounter(sim, node, "duplicates_filtered")},
      txQueueWaitLatency_(sim.metrics().latency(
          strFormat("nic.rdma.n%d.tx_queue_wait", node))),
      rel_(rel), reliable_(fabric.lossy()) {
  COMB_REQUIRE(cfg.perFragTx >= 0.0, "perFragTx must be non-negative");
}

std::uint64_t RdmaNic::sendMessage(net::NodeId dst, WireKind kind,
                                   const mpi::Envelope& env, Bytes wireBytes,
                                   Bytes msgBytes,
                                   transport::DataBuffer data,
                                   std::uint64_t senderHandle,
                                   std::uint64_t recvHandle) {
  const std::uint64_t msgId = nextMsgId_++;
  ++messagesSent_;
  counters_.sent.add();
  const Bytes mtu = fabric_.mtu();
  const auto fragCount = static_cast<std::uint32_t>(
      std::max<Bytes>(1, (wireBytes + mtu - 1) / mtu));
  Unacked* u = nullptr;
  if (reliable_) {
    u = &unacked_[msgId];
    u->dst = dst;
    u->acked.assign(fragCount, false);
  }
  Bytes remaining = wireBytes;
  for (std::uint32_t i = 0; i < fragCount; ++i) {
    auto wp = pool_.acquire();
    wp->kind = kind;
    wp->msgId = msgId;
    wp->fragIndex = i;
    wp->fragCount = fragCount;
    wp->env = env;
    wp->msgBytes = msgBytes;
    wp->senderHandle = senderHandle;
    wp->recvHandle = recvHandle;
    if (i == 0) wp->data = data;
    const Bytes fragBytes = std::min(remaining, mtu);
    remaining -= fragBytes;
    if (u != nullptr) {
      // Retain in NIC memory for autonomous replay.
      u->frags.push_back(wp);
      u->fragBytes.push_back(fragBytes);
    }
    auto& q = (kind == WireKind::Rts || kind == WireKind::Cts) ? ctrlQueue_
                                                               : txQueue_;
    q.push_back(TxFrag{dst, fragBytes, std::move(wp), i + 1 == fragCount,
                       msgId, sim_.now()});
  }
  COMB_ASSERT(remaining == 0, "fragmentation lost bytes");
  pumpTx();
  return msgId;
}

void RdmaNic::pumpTx() {
  if (txBusy_) return;
  // Control fragments (RTS/CTS) preempt queued data between fragments so
  // the NIC-to-NIC rendezvous loop stays live while data streams.
  std::deque<TxFrag>* q = nullptr;
  if (!ctrlQueue_.empty()) q = &ctrlQueue_;
  else if (!txQueue_.empty()) q = &txQueue_;
  if (!q) return;
  txBusy_ = true;
  TxFrag frag = std::move(q->front());
  q->pop_front();
  counters_.fragsTx.add();
  txQueueWaitLatency_.record(sim_.now() - frag.enqueuedAt);
  sim_.emitTrace(sim::TraceCategory::NicEvent, node_, "tx-frag",
                 static_cast<double>(frag.fragBytes));
  // Descriptor engine, not host CPU: the fragment enters the wire after
  // the WQE-processing delay; the engine then stays busy until the uplink
  // has serialized it, so injection is paced at wire rate and a control
  // fragment waits at most one data fragment, never a whole message.
  // Boxed: a TxFrag capture overflows the 48-byte event-closure slot.
  sim_.schedule(
      cfg_.perFragTx,
      [this, frag = std::make_unique<TxFrag>(std::move(frag))] {
        fabric_.inject(node_, frag->dst, frag->fragBytes, frag->payload);
        if (frag->lastOfMessage) {
          if (reliable_ && unacked_.count(frag->msgId) != 0) {
            // The hardware ack protocol owns completion: txDone fires on
            // full ack; the retransmission clock starts once the DMA
            // drains.
            armTimer(frag->msgId);
          } else if (txDone_) {
            txDone_(frag->msgId);
          }
        }
        sim_.scheduleAt(fabric_.uplink(node_).freeAt(), [this] {
          txBusy_ = false;
          pumpTx();
        });
      });
}

void RdmaNic::armTimer(std::uint64_t msgId) {
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return;  // fully acked already
  Time rto = rel_.ackTimeout;
  for (int i = 0; i < it->second.retries; ++i) rto *= rel_.backoff;
  it->second.timer.cancel();
  it->second.timer = sim_.scheduleAt(fabric_.uplink(node_).freeAt() + rto,
                                     [this, msgId] { onTimer(msgId); });
}

void RdmaNic::onTimer(std::uint64_t msgId) {
  ++timeoutWakeups_;
  counters_.timeouts.add();
  auto it = unacked_.find(msgId);
  if (it == unacked_.end()) return;  // stale: fully acked meanwhile
  Unacked& u = it->second;
  if (u.retries >= rel_.maxRetries)
    throw comb::Error(strFormat(
        "RDMA: retransmit budget exhausted for message %llu after %d "
        "rounds",
        static_cast<unsigned long long>(msgId), u.retries));
  ++u.retries;
  // Hardware replay from retained NIC buffers — no host CPU at all.
  std::uint64_t count = 0;
  for (std::uint32_t i = 0; i < u.frags.size(); ++i) {
    if (u.acked[i]) continue;
    fabric_.inject(node_, u.dst, u.fragBytes[i], u.frags[i]);
    ++count;
  }
  COMB_ASSERT(count > 0, "timeout with nothing missing");
  retransmits_ += count;
  counters_.retransmits.add(count);
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Fault, node_, "rdma:retransmit",
                   static_cast<double>(count));
  armTimer(msgId);
}

void RdmaNic::onAck(const WirePayload& ack) {
  auto it = unacked_.find(ack.msgId);
  if (it == unacked_.end()) return;  // duplicate ack after completion
  Unacked& u = it->second;
  if (ack.ackFragIndex >= u.acked.size() || u.acked[ack.ackFragIndex]) return;
  u.acked[ack.ackFragIndex] = true;
  if (++u.ackedCount < u.acked.size()) return;
  u.timer.cancel();
  const std::uint64_t msgId = ack.msgId;
  unacked_.erase(it);
  if (txDone_) txDone_(msgId);
}

void RdmaNic::sendAck(net::NodeId dst, std::uint64_t msgId,
                      std::uint32_t fragIndex) {
  auto wp = pool_.acquire();
  wp->kind = WireKind::Ack;
  wp->msgId = msgId;
  wp->ackFragIndex = fragIndex;
  fabric_.inject(node_, dst, rel_.ackBytes, std::move(wp));
}

void RdmaNic::deliver(net::Packet p) {
  const auto* wp = net::payloadAs<WirePayload>(p);
  COMB_ASSERT(wp != nullptr, "RDMA NIC received a non-wire packet");
  if (reliable_) {
    if (wp->kind == WireKind::Ack) {
      // Acks terminate in hardware.
      if (!p.corrupted) onAck(*wp);
      return;
    }
    if (p.corrupted) {
      // Checksum failure is detected and dropped in the NIC pipeline —
      // unlike Portals there is no interrupt to pay; the sender's
      // timeout replays it.
      return;
    }
    auto& seen = rxSeen_[{p.src, wp->msgId}];
    if (!seen.insert(wp->fragIndex).second) {
      // Duplicate: re-ack autonomously (the original ack may be lost).
      ++duplicatesFiltered_;
      counters_.duplicates.add();
      sendAck(p.src, wp->msgId, wp->fragIndex);
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Fault, node_, "rdma:dup",
                       static_cast<double>(wp->fragIndex));
      return;
    }
    // The fragment is safely in NIC/host memory: ack straight away.
    sendAck(p.src, wp->msgId, wp->fragIndex);
  }
  ++fragmentsReceived_;
  counters_.fragsRx.add();
  sim_.emitTrace(sim::TraceCategory::NicEvent, node_, "rx-frag",
                 static_cast<double>(p.wireBytes));
  // Zero host cost: the transport's handler performs hardware matching
  // in NIC context right now.
  if (rxHandler_) rxHandler_(*wp, p.src);
}

}  // namespace comb::nic
