// ActivitySignal: a monotonically-versioned condition for "something may
// have changed, re-check your predicate" patterns.
//
// Unlike a bare Trigger, it is immune to lost wake-ups: a waiter passes
// the version it last observed, and the wait completes immediately if the
// version has already advanced. This is how MiniMPI blocking waits sleep
// between protocol events without re-polling the simulator.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace comb::sim {

class ActivitySignal {
 public:
  explicit ActivitySignal(Simulator& sim) : sim_(&sim) {}
  ActivitySignal(const ActivitySignal&) = delete;
  ActivitySignal& operator=(const ActivitySignal&) = delete;

  std::uint64_t version() const { return version_; }

  /// Advance the version and wake every waiter (through the event queue).
  void signal() {
    ++version_;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) sim_->schedule(0.0, [h] { h.resume(); });
  }

  struct Awaiter {
    ActivitySignal& sig;
    std::uint64_t seen;
    bool await_ready() const noexcept { return sig.version_ != seen; }
    void await_suspend(std::coroutine_handle<> h) {
      sig.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: completes once version() differs from `seen`.
  Awaiter changedSince(std::uint64_t seen) { return Awaiter{*this, seen}; }

  std::size_t waiterCount() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::uint64_t version_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace comb::sim
