#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace comb::sim {

Executor::Executor(ExecutorOptions opts) : opts_(opts) {
  COMB_REQUIRE(opts_.shards >= 1, "Executor needs at least one shard");
  COMB_REQUIRE(opts_.shards == 1 || opts_.lookahead > 0.0,
               "multi-shard execution requires a positive lookahead");
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    auto ctx = std::make_unique<ShardContext>();
    ctx->executor_ = this;
    ctx->shardId_ = i;
    ctx->sharded_ = opts_.shards > 1;
    ctx->outboxes_.resize(static_cast<std::size_t>(opts_.shards));
    shards_.push_back(std::move(ctx));
  }
  workers_ = opts_.workers > 0 ? opts_.workers : hardwareJobs();
  workers_ = std::clamp(workers_, 1, opts_.shards);
  // The pool exists only when it buys concurrency; with one worker the
  // window loop runs every shard inline on the caller's thread — same
  // results, no synchronization.
  if (workers_ > 1) pool_ = std::make_unique<ThreadPool>(workers_);
}

Executor::~Executor() = default;

Time Executor::now() const {
  Time t = 0.0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::size_t Executor::liveProcesses() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->liveProcesses();
  return n;
}

std::uint64_t Executor::eventsExecuted() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->eventsExecuted();
  return n;
}

metrics::Snapshot Executor::metricsSnapshot() const {
  std::vector<metrics::Snapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& s : shards_) parts.push_back(s->metrics().snapshot());
  return metrics::mergeSnapshots(parts);
}

Time Executor::run(Time until) {
  // Single shard: the classic serial loop, byte-for-byte the pre-PDES
  // core — no windows, no barriers, no atomics anywhere on the path.
  if (!parallel()) return shards_[0]->run(until);

  const std::size_t n = shards_.size();
  // Events at exactly `until` must still run (serial-run semantics), but
  // the window loop uses a strict bound; the smallest representable time
  // past `until` turns the inclusive cap into an exclusive one.
  const Time cap = std::isinf(until)
                       ? until
                       : std::nextafter(until, std::numeric_limits<Time>::infinity());

  for (;;) {
    // Fold messages routed at the previous barrier, then find the global
    // minimum next event time. Serial section: cheap (O(shards) plus the
    // fold-in, which is proportional to actual cross-shard traffic).
    Time t = std::numeric_limits<Time>::infinity();
    for (const auto& s : shards_) {
      s->drainInbox();
      t = std::min(t, s->nextPendingTime());
    }
    if (t >= cap) break;  // drained, or everything left is beyond `until`

    Time bound = std::min(t + opts_.lookahead, cap);
    // Conservative-window progress requires T + lookahead > T. With
    // times in seconds and latencies down to nanoseconds this holds for
    // any plausible run; if virtual time ever grows so large that the
    // lookahead vanishes in rounding, no correct window exists.
    COMB_REQUIRE(bound > t,
                 "lookahead vanished in floating-point rounding at t=" +
                     std::to_string(t));

    ++windows_;
    if (pool_) {
      for (std::size_t i = 0; i < n; ++i) {
        ShardContext* ctx = shards_[i].get();
        pool_->submit([ctx, bound] { ctx->runWindow(bound); });
      }
      // Window barrier: wait() returns once every shard has parked at
      // `bound`, and its internal synchronization publishes all shard
      // state (clocks, outboxes, payload buffers) to this thread and,
      // transitively, to whichever worker runs each shard next window.
      pool_->wait();
    } else {
      for (const auto& s : shards_) s->runWindow(bound);
    }

    // Route outboxes to destination inboxes. Source-major order, but the
    // destination re-sorts by (time, seq, src) before the fold-in, so
    // this order is immaterial to results.
    for (const auto& src : shards_) {
      for (std::size_t d = 0; d < n; ++d) {
        auto& box = src->outboxes_[d];
        if (box.empty()) continue;
        auto& inbox = shards_[d]->inbox_;
        inbox.insert(inbox.end(), std::make_move_iterator(box.begin()),
                     std::make_move_iterator(box.end()));
        box.clear();
      }
    }

    // Deterministic failure selection: lowest shard index wins, same
    // convention as parallelFor and runSweepParallel.
    for (const auto& s : shards_) s->rethrowIfFailed();
  }

  // Serial-run parity: a queue with events beyond `until` parks that
  // shard's clock at `until`.
  for (const auto& s : shards_) {
    if (!s->queue_.empty() && s->now_ < until) s->now_ = until;
  }
  return now();
}

}  // namespace comb::sim
