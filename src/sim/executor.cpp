#include "sim/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace comb::sim {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

/// Best-effort pinning of a spawned worker thread. Failure (cpuset
/// restrictions, exotic hosts) is silently ignored — affinity is a
/// performance hint, never a correctness requirement.
void pinThread(std::thread& t, int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)cpu;
#endif
}

int affinityCpu(AffinityPolicy policy, int worker, int workers) {
  const int ncpu = hardwareJobs();
  switch (policy) {
    case AffinityPolicy::None:
      return -1;
    case AffinityPolicy::Compact:
      return worker % ncpu;
    case AffinityPolicy::Scatter: {
      const int stride = std::max(1, ncpu / std::max(workers, 1));
      return (worker * stride) % ncpu;
    }
  }
  return -1;
}

/// In-place min-plus (Floyd-Warshall) closure over an S x S matrix whose
/// diagonal starts at +inf: afterwards [s][d] (s != d) is the cheapest
/// s -> d path cost and [d][d] is the cheapest feedback cycle through d.
/// The cycle term is load-bearing for the window bounds: shard d's own
/// earliest event can influence a neighbor and bounce back, so d may only
/// run to T_d + cycle(d) no matter how far ahead every other shard is.
void closeMinPlus(std::vector<Time>& m, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t s = 0; s < n; ++s) {
      const Time sk = m[s * n + k];
      if (std::isinf(sk)) continue;
      for (std::size_t d = 0; d < n; ++d) {
        const Time via = sk + m[k * n + d];
        if (via < m[s * n + d]) m[s * n + d] = via;
      }
    }
  }
}

}  // namespace

const char* affinityPolicyName(AffinityPolicy p) {
  switch (p) {
    case AffinityPolicy::None:
      return "none";
    case AffinityPolicy::Compact:
      return "compact";
    case AffinityPolicy::Scatter:
      return "scatter";
  }
  return "none";
}

AffinityPolicy parseAffinityPolicy(std::string_view s) {
  if (s == "none") return AffinityPolicy::None;
  if (s == "compact") return AffinityPolicy::Compact;
  if (s == "scatter") return AffinityPolicy::Scatter;
  throw ConfigError("sim-affinity must be one of none|compact|scatter (got '" +
                    std::string(s) + "')");
}

int Executor::computeWorkers(const ExecutorOptions& opts) {
  int w = opts.workers > 0 ? opts.workers : hardwareJobs();
  return std::clamp(w, 1, std::max(opts.shards, 1));
}

Executor::Executor(ExecutorOptions opts)
    : opts_(opts),
      workers_(computeWorkers(opts)),
      barrier_(computeWorkers(opts)) {
  COMB_REQUIRE(opts_.shards >= 1, "Executor needs at least one shard");
  COMB_REQUIRE(opts_.shards == 1 || opts_.lookahead > 0.0,
               "multi-shard execution requires a positive lookahead");
  const auto n = static_cast<std::size_t>(opts_.shards);
  shards_.reserve(n);
  for (int i = 0; i < opts_.shards; ++i) {
    auto ctx = std::make_unique<ShardContext>();
    ctx->executor_ = this;
    ctx->shardId_ = i;
    ctx->sharded_ = opts_.shards > 1;
    shards_.push_back(std::move(ctx));
  }
  if (!parallel()) return;

  // Default matrix: the scalar for every pair. The closure fills the
  // diagonal with each shard's min feedback cycle (2 x scalar here).
  matrix_.assign(n * n, opts_.lookahead);
  for (std::size_t i = 0; i < n; ++i) matrix_[i * n + i] = kInf;
  closeMinPlus(matrix_, n);
  nextTimes_.assign(n, kInf);
  bounds_.assign(n, 0.0);
  mail_.resize(n * n);
  scratch_.resize(n);
  for (auto& s : shards_) {
    s->outRings_ = &ring(s->shardId_, 0);
    s->shardBounds_ = bounds_.data();
  }

  // Self-observability instruments, created once here so the window loop
  // never does a registry lookup. Each lives in a registry its owning
  // worker touches exclusively during a run, like every other per-shard
  // metric.
  windowEvents_.reserve(n);
  for (int i = 0; i < opts_.shards; ++i)
    windowEvents_.push_back(&shards_[static_cast<std::size_t>(i)]
                                 ->metrics()
                                 .histogram(strFormat("exec.shard%d.window_events", i),
                                            0.0, 1024.0, 64));
  barrierWait_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w)
    barrierWait_.push_back(&shards_[static_cast<std::size_t>(shardLo(w))]
                                ->metrics()
                                .latency(strFormat("exec.w%d.barrier_wait", w)));

  // Persistent team: workers_ - 1 spawned threads (the run() caller is
  // worker 0). They are created once, park on runGen_ between runs, and
  // live until the destructor — a window barrier never pays thread
  // creation or a mutex/CV round-trip.
  team_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    team_.emplace_back([this, w] { workerLoop(w); });
    if (const int cpu = affinityCpu(opts_.affinity, w, workers_); cpu >= 0)
      pinThread(team_.back(), cpu);
  }
}

Executor::~Executor() {
  if (!team_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    runGen_.fetch_add(1, std::memory_order_release);
    runGen_.notify_all();
    for (auto& t : team_) t.join();
  }
}

Time Executor::now() const {
  Time t = 0.0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::size_t Executor::liveProcesses() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->liveProcesses();
  return n;
}

std::uint64_t Executor::eventsExecuted() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->eventsExecuted();
  return n;
}

double Executor::shardImbalance() const {
  if (!parallel()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto& s : shards_) {
    const std::uint64_t e = s->eventsExecuted();
    total += e;
    peak = std::max(peak, e);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(peak) * static_cast<double>(shardCount()) /
         static_cast<double>(total);
}

metrics::Snapshot Executor::metricsSnapshot() const {
  std::vector<metrics::Snapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& s : shards_) parts.push_back(s->metrics().snapshot());
  return metrics::mergeSnapshots(parts);
}

void Executor::setLookaheadMatrix(std::vector<Time> direct) {
  const std::size_t n = shards_.size();
  COMB_REQUIRE(direct.size() == n * n,
               "lookahead matrix must be shards x shards");
  if (n == 1) return;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) {
        direct[s * n + d] = kInf;  // closure fills in the min cycle
        continue;
      }
      const Time entry = direct[s * n + d];
      // The scalar lookahead is the certified floor (SimCluster checks it
      // against the fabric's minimum link latency); a matrix may widen
      // windows, never narrow them below the certified bound.
      COMB_REQUIRE(entry >= opts_.lookahead,
                   "lookahead matrix entry below the certified scalar floor");
    }
  }
  // Min-plus closure: influence can travel s -> k -> d, so the
  // conservative per-pair bound is the cheapest path, not the direct
  // edge. O(S^3), once per run setup.
  closeMinPlus(direct, n);
  matrix_ = std::move(direct);
  matrixSet_ = true;
}

Time Executor::effectiveLookahead() const {
  if (!parallel()) return opts_.lookahead;
  const std::size_t n = shards_.size();
  Time lo = kInf;
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t d = 0; d < n; ++d)
      if (s != d) lo = std::min(lo, matrix_[s * n + d]);
  return std::isinf(lo) ? opts_.lookahead : lo;
}

void Executor::planWindow() {
  const std::size_t n = shards_.size();
  Time tmin = kInf;
  bool failed = false;
  for (std::size_t i = 0; i < n; ++i) {
    tmin = std::min(tmin, nextTimes_[i]);
    // Read of another shard's failure flag: the owning worker's writes
    // happened before its barrier arrival, which happens before this
    // completion runs.
    failed = failed || shards_[i]->failure_ != nullptr;
  }
  if (failed || tmin >= cap_) {
    done_ = true;
    return;
  }
  // Per-shard LBTS: shard d may run to the earliest time any shard's
  // pending work could still influence it — including its own (the
  // diagonal holds d's min feedback cycle: d's next event can bounce off
  // a neighbor and come back). Wider than the classic global window
  // min(T) + lookahead whenever the early shards are far (in lookahead
  // distance) from d — and unbounded (the cap) when nothing can reach d.
  bool progress = false;
  for (std::size_t d = 0; d < n; ++d) {
    Time influence = kInf;
    for (std::size_t s = 0; s < n; ++s)
      influence = std::min(influence, nextTimes_[s] + matrix_[s * n + d]);
    // Derate by a few ulps: senders compute arrival times with a
    // different floating-point association ((start + occupy) + latency)
    // than this bound (T_s + matrix entry), so a post can land up to a
    // couple of ulps below the analytic LBTS. Shrinking a conservative
    // bound is always safe; the margin (~1e-18 at millisecond scales) is
    // sub-picosecond noise next to any real lookahead. The cap stays
    // exact so events at exactly `until` still run.
    if (!std::isinf(influence))
      influence -= 8 * std::numeric_limits<Time>::epsilon() * influence;
    const Time b = std::min(cap_, influence);
    bounds_[d] = b;
    progress = progress || nextTimes_[d] < b;
  }
  // Conservative-window progress requires that the earliest shard can run
  // at least its next event. With times in seconds and latencies down to
  // nanoseconds this holds for any plausible run; if virtual time ever
  // grows so large that the lookahead vanishes in rounding, no correct
  // window exists.
  if (!progress) {
    try {
      COMB_REQUIRE(false,
                   "lookahead vanished in floating-point rounding at t=" +
                       std::to_string(tmin));
    } catch (...) {
      windowError_ = std::current_exception();
    }
    done_ = true;
    return;
  }
  ++windows_;
}

void Executor::drainShard(int d) {
  const std::size_t n = shards_.size();
  auto& scratch = scratch_[static_cast<std::size_t>(d)];
  for (std::size_t s = 0; s < n; ++s) {
    if (static_cast<int>(s) == d) continue;
    MailboxRing& box = ring(static_cast<int>(s), d);
    if (!box.empty()) box.drainInto(scratch);
  }
  if (scratch.empty()) return;
  // Deterministic fold-in order: the packed (time, seq, src) key — unique
  // per message, so the unstable sort is still deterministic. Pushing in
  // this order assigns local queue sequence numbers in this order, so the
  // destination's event order (including ties with local events, which
  // the queue breaks by local seq) is independent of which worker routed
  // what and when.
  std::sort(scratch.begin(), scratch.end(),
            [](const RemoteEvent& a, const RemoteEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.src < b.src;
            });
  EventQueue& queue = shards_[static_cast<std::size_t>(d)]->queue_;
  for (RemoteEvent& ev : scratch) {
    // Straight into the queue: the lookahead invariant already guarantees
    // when >= this shard's clock, and scheduleAt's now-check would be
    // comparing against a clock parked mid-window.
    queue.push(ev.when, std::move(ev.fn));
  }
  scratch.clear();
}

void Executor::driveShards(int w) {
  using WallClock = std::chrono::steady_clock;
  const int lo = shardLo(w);
  const int hi = shardHi(w);
  LatencyRecorder& barrierWait = *barrierWait_[static_cast<std::size_t>(w)];
  for (;;) {
    for (int d = lo; d < hi; ++d) {
      ShardContext& s = *shards_[static_cast<std::size_t>(d)];
      try {
        drainShard(d);
      } catch (...) {
        // Fold-in can only throw on allocation failure; record it like a
        // process failure so the run stops deterministically.
        s.recordFailure(std::current_exception(), "executor:fold-in");
      }
      nextTimes_[static_cast<std::size_t>(d)] = s.nextPendingTime();
    }
    const auto planArrive = WallClock::now();
    barrier_.arriveAndWait([this] { planWindow(); });
    barrierWait.record(
        std::chrono::duration<double>(WallClock::now() - planArrive).count());
    if (done_) return;
    for (int d = lo; d < hi; ++d) {
      ShardContext& s = *shards_[static_cast<std::size_t>(d)];
      const std::uint64_t before = s.eventsExecuted();
      if (nextTimes_[static_cast<std::size_t>(d)] <
          bounds_[static_cast<std::size_t>(d)])
        s.runWindow(bounds_[static_cast<std::size_t>(d)]);
      // Window occupancy, idle windows included — the imbalance signal.
      windowEvents_[static_cast<std::size_t>(d)]->add(
          static_cast<double>(s.eventsExecuted() - before));
    }
    const auto syncArrive = WallClock::now();
    barrier_.arriveAndWait([] {});
    barrierWait.record(
        std::chrono::duration<double>(WallClock::now() - syncArrive).count());
  }
}

void Executor::workerLoop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    // Park between runs: futex wait on the run generation, no spinning —
    // an idle executor (between sweep points, or after teardown of the
    // owning cluster) costs nothing.
    runGen_.wait(seen, std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = runGen_.load(std::memory_order_acquire);
    driveShards(w);
  }
}

Time Executor::run(Time until) {
  // Single shard: the classic serial loop, byte-for-byte the pre-PDES
  // core — no windows, no barriers, no atomics anywhere on the path.
  if (!parallel()) return shards_[0]->run(until);

  // Events at exactly `until` must still run (serial-run semantics), but
  // the window loop uses a strict bound; the smallest representable time
  // past `until` turns the inclusive cap into an exclusive one.
  cap_ = std::isinf(until)
             ? until
             : std::nextafter(until, std::numeric_limits<Time>::infinity());
  done_ = false;
  windowError_ = nullptr;
  // Release the parked team (their first barrier arrival acquires this
  // fence, so the cap/done writes above are visible), then drive worker
  // 0's shards on the calling thread.
  runGen_.fetch_add(1, std::memory_order_release);
  runGen_.notify_all();
  driveShards(0);

  // The final planWindow set done_ under the barrier, so every worker has
  // arrived there and all shard state is visible here.
  if (windowError_) std::rethrow_exception(windowError_);
  // Deterministic failure selection: lowest shard index wins, same
  // convention as parallelFor and runSweepParallel.
  for (const auto& s : shards_) s->rethrowIfFailed();

  // Serial-run parity: a queue with events beyond `until` parks that
  // shard's clock at `until`.
  for (const auto& s : shards_) {
    if (!s->queue_.empty() && s->now_ < until) s->now_ = until;
  }
  return now();
}

}  // namespace comb::sim
