// Coroutine task type for simulated processes.
//
// sim::Task<T> is a lazily-started coroutine: nothing runs until the task
// is co_awaited (or handed to Simulator::spawn). Completion resumes the
// awaiter via symmetric transfer, so arbitrarily deep task chains use O(1)
// stack. Exceptions propagate to the awaiter; exceptions escaping a
// spawned (detached) task are captured by the Simulator and rethrown from
// Simulator::run() — a simulated process dying must fail the experiment,
// never be silently dropped.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace comb::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
      requires std::convertible_to<U&&, T>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  // --- awaiter interface: `T x = co_await std::move(task);` -------------
  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    COMB_ASSERT(h_, "awaiting an empty Task");
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    COMB_ASSERT(p.value.has_value(), "Task finished without a value");
    return std::move(*p.value);
  }

  /// The raw handle (used by Simulator::spawn).
  std::coroutine_handle<promise_type> handle() const { return h_; }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(h_, {});
  }

  /// Start the coroutine and require it to finish without suspending —
  /// used by the synchronous (native thread) backend where every
  /// awaitable completes immediately. Returns the task's value.
  T runSync() {
    COMB_ASSERT(h_ && !h_.done(), "runSync on empty/finished task");
    h_.resume();
    COMB_ASSERT(h_.done(), "task suspended under a synchronous backend");
    return await_resume();
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    COMB_ASSERT(h_, "awaiting an empty Task");
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

  std::coroutine_handle<promise_type> handle() const { return h_; }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(h_, {});
  }

  /// See Task<T>::runSync.
  void runSync() {
    COMB_ASSERT(h_ && !h_.done(), "runSync on empty/finished task");
    h_.resume();
    COMB_ASSERT(h_.done(), "task suspended under a synchronous backend");
    await_resume();
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_{};
};

}  // namespace comb::sim
