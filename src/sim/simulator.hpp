// Compatibility surface for the classic serial simulator.
//
// The engine formerly defined here is now sim::ShardContext
// (sim/shard_context.hpp): the same clock + event queue + coroutine
// processes + metrics + tracing, renamed when the core learned to run as
// one shard of a parallel sim::Executor (sim/executor.hpp). A standalone
// ShardContext *is* the classic serial simulator — same code path, same
// results — so the old name stays as an alias and every existing test,
// bench and example keeps compiling and behaving identically.
//
// New code addressing a single scheduling domain (components, models,
// unit tests) should prefer the ShardContext name; code driving a whole
// simulation should hold an Executor.
#pragma once

#include "sim/shard_context.hpp"

namespace comb::sim {

using Simulator = ShardContext;

}  // namespace comb::sim
