// The discrete-event simulator driving every COMB experiment.
//
// A Simulator owns a virtual clock and an event queue. Simulated
// processes are coroutines (sim::Task<void>) spawned onto the simulator;
// they advance virtual time by awaiting delays or synchronization objects
// (Trigger, Channel, the host CPU model, ...). Execution is single-threaded
// and bit-reproducible: same program, same seed, same event order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/tracelog.hpp"

namespace comb::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time in seconds.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0). Takes
  /// any callable an event closure can hold (see sim/inplace_fn.hpp) and
  /// forwards it straight into the event pool — no intermediate EventFn.
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  EventHandle schedule(Time delay, F&& fn) {
    COMB_ASSERT(delay >= 0.0, "negative event delay");
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }
  /// Schedule `fn` at absolute virtual time `when` (>= now()).
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  EventHandle scheduleAt(Time when, F&& fn) {
    COMB_ASSERT(when >= now_, "scheduling into the past");
    return queue_.push(when, std::forward<F>(fn));
  }

  /// Launch a simulated process. The coroutine starts at the current
  /// virtual time (before run() it starts at t = 0 when run() begins).
  /// The simulator owns the coroutine; exceptions it throws abort the
  /// simulation and are rethrown from run()/step().
  void spawn(Task<void> process, std::string name = {});

  /// Run until the event queue drains or `until` is reached (events at
  /// exactly `until` still run). Returns the final virtual time.
  Time run(Time until = std::numeric_limits<Time>::infinity());

  /// Execute a single event; returns false when none are pending.
  bool step();

  /// Number of processes spawned that have not yet finished.
  std::size_t liveProcesses() const { return liveProcesses_; }
  std::uint64_t eventsExecuted() const { return eventsExecuted_; }
  std::uint64_t eventsScheduled() const { return queue_.scheduledCount(); }

  /// Optional hook invoked before each event executes — used by the trace
  /// tests to record exact event ordering.
  using TraceFn = std::function<void(Time, std::uint64_t /*eventIndex*/)>;
  void setTrace(TraceFn fn) { trace_ = std::move(fn); }

  /// Attach a structured trace log (see sim/tracelog.hpp). Instrumented
  /// components emit through emitTrace*(); pass nullptr to detach. Detached,
  /// every emitter below is a single pointer test.
  void attachTraceLog(TraceLog* log) { traceLog_ = log; }
  TraceLog* traceLog() const { return traceLog_; }
  bool tracing() const { return traceLog_ != nullptr; }
  void emitTrace(TraceCategory cat, int node, std::string_view label,
                 double a = 0, double b = 0) {
    if (traceLog_) traceLog_->emit(now_, cat, node, label, a, b);
  }
  void emitTraceBegin(TraceCategory cat, int node, std::string_view label,
                      double a = 0) {
    if (traceLog_) traceLog_->beginSpan(now_, cat, node, label, a);
  }
  void emitTraceEnd(TraceCategory cat, int node, std::string_view label,
                    double a = 0) {
    if (traceLog_) traceLog_->endSpan(now_, cat, node, label, a);
  }
  /// Span with a known duration, stamped [now, now + dur).
  void emitTraceComplete(Time dur, TraceCategory cat, int node,
                         std::string_view label, double a = 0, double b = 0) {
    if (traceLog_) traceLog_->complete(now_, dur, cat, node, label, a, b);
  }
  /// Like emitTraceComplete but with an explicit start time (for emitters
  /// that compute a window, e.g. an ISR that starts after the current
  /// busy period).
  void emitTraceCompleteAt(Time start, Time dur, TraceCategory cat, int node,
                           std::string_view label, double a = 0,
                           double b = 0) {
    if (traceLog_) traceLog_->complete(start, dur, cat, node, label, a, b);
  }

  /// Metrics registry for this machine: components register named counters
  /// and histograms at construction and snapshot after a run. Always
  /// present (unlike the trace log) so increments never need a null check.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Awaitable: suspend the calling coroutine for `d` simulated seconds.
  /// A zero delay still round-trips through the event queue, which
  /// deterministically yields to other ready processes.
  auto delay(Time d);
  /// Awaitable: yield once (equivalent to delay(0)).
  auto yield();

 private:
  struct Detached;
  Detached runProcess(Task<void> t, std::string name);
  void recordFailure(std::exception_ptr e, const std::string& name);
  void rethrowIfFailed();

  Time now_ = 0.0;
  EventQueue queue_;
  std::uint64_t eventsExecuted_ = 0;
  std::size_t liveProcesses_ = 0;
  std::exception_ptr failure_;
  std::string failedProcess_;
  TraceFn trace_;
  TraceLog* traceLog_ = nullptr;
  metrics::Registry metrics_;
};

/// RAII span: begins on construction, ends (same label, same track) on
/// destruction at the then-current virtual time. Safe when no log is
/// attached. The label must outlive the scope (string literals do).
class TraceScope {
 public:
  TraceScope(Simulator& sim, TraceCategory cat, int node,
             std::string_view label, double a = 0)
      : sim_(sim), cat_(cat), node_(node), label_(label) {
    sim_.emitTraceBegin(cat_, node_, label_, a);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { sim_.emitTraceEnd(cat_, node_, label_); }

 private:
  Simulator& sim_;
  TraceCategory cat_;
  int node_;
  std::string_view label_;
};

namespace detail {

struct DelayAwaiter {
  Simulator& sim;
  Time d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim.schedule(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

inline auto Simulator::delay(Time d) { return detail::DelayAwaiter{*this, d}; }
inline auto Simulator::yield() { return delay(0); }

}  // namespace comb::sim
