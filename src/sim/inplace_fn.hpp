// InplaceFn<N>: a move-only, type-erased `void()` callable whose capture
// state lives entirely inside an N-byte inline buffer — never on the heap.
//
// This is the event-closure type of the simulator hot path. Every
// scheduled event used to pay a std::function heap allocation; InplaceFn
// trades that for a hard capacity limit, enforced at compile time: a
// closure that does not fit (or is not nothrow-move-constructible, which
// slot relocation inside the event pool requires) fails the constructor's
// constraints, so `std::is_constructible_v<InplaceFn<N>, F>` doubles as a
// testable capacity probe. Size the capacity to the largest real closure
// (see sim/event_queue.hpp for the event-path budget).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace comb::sim {

template <std::size_t Capacity>
class InplaceFn {
 public:
  static constexpr std::size_t capacity = Capacity;

  /// True when a callable of type F (after decay) can be stored: it must
  /// fit the buffer, not over-align it (the buffer is pointer-aligned —
  /// enough for any capture of pointers, integers and doubles, and it
  /// keeps sizeof(InplaceFn<48>) + an 8-byte tag at exactly one cache
  /// line for the event pool), and relocate without throwing.
  template <typename F>
  static constexpr bool fits =
      sizeof(F) <= Capacity && alignof(F) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<F>;

  InplaceFn() = default;

  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<Fn, InplaceFn> && std::is_invocable_r_v<void, Fn&> &&
                fits<Fn>>>
  InplaceFn(F&& f) : ops_(&OpsImpl<Fn>::ops) {  // NOLINT(google-explicit-constructor)
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
  }

  InplaceFn(InplaceFn&& other) noexcept { moveFrom(other); }

  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  /// Construct a callable directly in the buffer, replacing any current
  /// one. Equivalent to `*this = InplaceFn(f)` but with no intermediate
  /// object — the schedule hot path uses this to build each event
  /// closure in its pool slot, skipping the type-erased relocation a
  /// move-assign would cost.
  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<Fn, InplaceFn> && std::is_invocable_r_v<void, Fn&> &&
                fits<Fn>>>
  void emplace(F&& f) {
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsImpl<Fn>::ops;
  }

  ~InplaceFn() { reset(); }

  /// Destroy the stored callable (if any); leaves the fn empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    COMB_ASSERT(ops_ != nullptr, "invoking an empty InplaceFn");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable at `to` from `from`, destroying `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    /// Trivially copyable + destructible: relocation is a memcpy and
    /// destruction a no-op, letting reset()/moveFrom() skip the indirect
    /// calls. True for the hottest closures (coroutine resumptions
    /// capture only a handle).
    bool trivial;
  };

  template <typename Fn>
  struct OpsImpl {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
      static_cast<Fn*>(from)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy,
                             std::is_trivially_copyable_v<Fn> &&
                                 std::is_trivially_destructible_v<Fn>};
  };

  void moveFrom(InplaceFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial)
        std::memcpy(buf_, other.buf_, Capacity);
      else
        other.ops_->relocate(other.buf_, buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  alignas(void*) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace comb::sim
