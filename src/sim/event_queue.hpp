// The simulator's pending-event set: a binary heap ordered by
// (time, sequence number). The sequence number makes same-timestamp events
// FIFO, which is what makes every simulation bit-reproducible.
//
// Cancellation is lazy: EventHandle::cancel() marks the record; the heap
// drops cancelled records when they surface. This keeps cancellation O(1)
// (the preemptible CPU model cancels and reschedules completion events on
// every interrupt).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace comb::sim {

using EventFn = std::function<void()>;

namespace detail {

struct EventRecord {
  Time when;
  std::uint64_t seq;
  EventFn fn;
  bool cancelled = false;
};

struct EventLater {
  bool operator()(const std::shared_ptr<EventRecord>& a,
                  const std::shared_ptr<EventRecord>& b) const {
    if (a->when != b->when) return a->when > b->when;
    return a->seq > b->seq;
  }
};

}  // namespace detail

/// A cancellable reference to a scheduled event. Default-constructed
/// handles are inert. Holding a handle does not keep the event alive past
/// execution.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto rec = rec_.lock()) rec->cancelled = true;
  }

  /// True while the event is still scheduled (not fired, not cancelled).
  bool pending() const {
    auto rec = rec_.lock();
    return rec && !rec->cancelled;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> rec)
      : rec_(std::move(rec)) {}

  std::weak_ptr<detail::EventRecord> rec_;
};

class EventQueue {
 public:
  EventHandle push(Time when, EventFn fn) {
    auto rec = std::make_shared<detail::EventRecord>(
        detail::EventRecord{when, nextSeq_++, std::move(fn)});
    EventHandle handle{rec};
    heap_.push(std::move(rec));
    return handle;
  }

  bool empty() {
    skipCancelled();
    return heap_.empty();
  }

  Time nextTime() {
    skipCancelled();
    return heap_.top()->when;
  }

  /// Pop and return the earliest live event's action (with its time).
  std::pair<Time, EventFn> pop() {
    skipCancelled();
    auto rec = heap_.top();
    heap_.pop();
    return {rec->when, std::move(rec->fn)};
  }

  std::uint64_t scheduledCount() const { return nextSeq_; }

 private:
  void skipCancelled() {
    while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
  }

  std::priority_queue<std::shared_ptr<detail::EventRecord>,
                      std::vector<std::shared_ptr<detail::EventRecord>>,
                      detail::EventLater>
      heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace comb::sim
