// The simulator's pending-event set: a slab-allocated event pool indexed
// by packed 128-bit keys held in a 4-ary min-heap plus a sorted drain
// stack for bursts (see the store comment inside). Ordering is (time, seq);
// the sequence number makes same-timestamp events FIFO, which is what
// makes every simulation bit-reproducible.
//
// Hot-path design (this is the inner loop of every figure sweep):
//   * Event closures are InplaceFn — capture state lives inline in the
//     pool slot, so steady-state scheduling performs zero heap
//     allocations once the slab has reached its high-water mark.
//   * The slab is chunked (fixed-size arrays, never reallocated), so slot
//     addresses are stable for the queue's lifetime. That is what lets
//     runNext() execute a closure in place — events fired while it runs
//     can grow the pool without moving the running closure.
//   * A heap entry packs (when, seq, slot) into one 128-bit integer.
//     Virtual time is non-negative, and the IEEE-754 bit pattern of a
//     non-negative double orders like the double itself, so a single
//     integer comparison orders by (when, seq) — no branchy two-field
//     comparator on the sift path. push() canonicalises -0.0 and asserts
//     when >= 0.
//   * A pool slot is identified by (index, seq). The slot records the
//     seq of its current occupant (kDeadSeq when free); a mismatch with a
//     handle's (or heap entry's) seq means the slot was recycled, so
//     stale handles and lazily-abandoned heap entries are detected in
//     O(1) without any shared_ptr/weak_ptr refcounting. seq is never
//     reused (44 bits, asserted), so the check cannot be fooled.
//   * Cancellation releases the slot immediately (destroying the closure
//     and returning the slot to the free list); the heap entry is dropped
//     lazily when it surfaces. This keeps cancel() O(1) — the preemptible
//     CPU model cancels and reschedules completion events on every
//     interrupt.
//
// Capacity: seq < 2^44 events per queue lifetime, slot < 2^20 events
// pending at once — both asserted, both far beyond any COMB sweep.
//
// Contracts: nextTime(), pop() and runNext() require !empty() (asserted);
// empty() itself prunes stale heap entries and is the only safe way to
// test for pending work. EventHandles must not outlive the EventQueue
// they came from (they hold a raw back-pointer; in practice handles live
// inside simulation components owned by the same Simulator).
//
// Destroying the queue destroys every unfired closure, releasing whatever
// they captured — this is what guarantees a Simulator torn down early
// does not leak deferred-spawn tasks.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/inplace_fn.hpp"

namespace comb::sim {

/// Inline capacity for event closures. Budget for the largest real
/// closures on the hot path: `Link::send`'s delivery lambda (`this` + a
/// 40-byte Packet) and `Simulator::spawn`'s deferred-start lambda
/// (`this` + a Task + a std::string name) — both exactly 48 bytes.
/// Chosen so a pool Slot (buffer + ops pointer + seq) is exactly one
/// 64-byte cache line. Oversized captures fail to compile (see
/// sim/inplace_fn.hpp); box rare large state in a unique_ptr rather
/// than raising this.
inline constexpr std::size_t kEventClosureCapacity = 48;

using EventFn = InplaceFn<kEventClosureCapacity>;

class EventQueue;

/// A cancellable reference to a scheduled event. Default-constructed
/// handles are inert. Holding a handle does not keep the event alive past
/// execution, and a handle is invalidated (becomes a no-op) the moment
/// its event fires or is cancelled — even if the slot is later reused.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  inline void cancel();

  /// True while the event is still scheduled (not fired, not cancelled).
  inline bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint64_t seq)
      : queue_(q), slot_(slot), seq_(seq) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

class EventQueue {
#if defined(__SIZEOF_INT128__)
  __extension__ using Key = unsigned __int128;
#else
#error "EventQueue requires a 128-bit integer type (GCC/Clang)"
#endif

  static constexpr std::uint32_t kChunkShift = 8;                // 256 slots
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr int kSlotBits = 20;
  static constexpr std::uint64_t kMaxSlots = 1ull << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);
  static constexpr std::uint64_t kDeadSeq = ~std::uint64_t{0};   // free slot

 public:
  EventQueue() { heap_.reserve(kChunkSize); }

  /// Schedule `fn` at virtual time `when`. Accepts any callable that an
  /// EventFn can hold (enforced by InplaceFn's constraints) and
  /// constructs it directly in the pool slot — passing a raw lambda here
  /// skips the type-erased relocation that materialising an EventFn
  /// first would cost.
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  EventHandle push(Time when, F&& fn) {
    COMB_ASSERT(when >= 0.0, "event scheduled at negative virtual time");
    when += 0.0;  // canonicalise -0.0: only non-negative bits order as keys
    const std::uint64_t seq = nextSeq_++;
    COMB_ASSERT(seq < kMaxSeq, "event sequence space exhausted");
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
      slot = freeSlots_.back();
      freeSlots_.pop_back();
    } else {
      slot = slotCount_++;
      COMB_ASSERT(slot < kMaxSlots, "event pool slot space exhausted");
      if ((slot >> kChunkShift) == chunks_.size())
        chunks_.emplace_back(new Slot[kChunkSize]);
    }
    Slot& s = slotRef(slot);
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, EventFn>)
      s.fn = std::forward<F>(fn);
    else
      s.fn.emplace(std::forward<F>(fn));
    s.seq = seq;
    // Append only — the entry is folded into heap order lazily at the
    // next top access (see ensureOrdered), so a burst of schedules
    // costs O(1) each plus one linear-time heapify, not a sift per push.
    heap_.push_back((Key{std::bit_cast<std::uint64_t>(when)} << 64) |
                    (Key{seq} << kSlotBits) | slot);
    return EventHandle{this, slot, seq};
  }

  bool empty() {
    skipStale();
    return noEntries();
  }

  /// Earliest live event's time. Requires !empty().
  Time nextTime() {
    skipStale();
    COMB_ASSERT(!noEntries(), "nextTime() on an empty event queue");
    return whenOf(frontKey());
  }

  /// Execute the earliest live event in place (no closure move), after
  /// calling `pre(when)` — the simulator's clock/trace bookkeeping. The
  /// closure runs directly from its pool slot: chunked storage keeps the
  /// slot's address stable even when the closure schedules new events,
  /// and the slot is marked dead before invocation so self-cancel is a
  /// no-op. Returns the event's time. Requires !empty().
  template <typename Pre>
  Time runNext(Pre&& pre) {
    skipStale();
    COMB_ASSERT(!noEntries(), "runNext() on an empty event queue");
    return fireFront(std::forward<Pre>(pre));
  }

  /// If the earliest live event is at time <= `until`, execute it (as
  /// runNext) and return true; otherwise — or when the queue is empty —
  /// return false. This is the simulator's whole per-event loop body:
  /// one stale-prune and one heap access decide both "is there work"
  /// and "is it due", where separate empty()/nextTime()/runNext() calls
  /// would redo that bookkeeping three times per event.
  template <typename Pre>
  bool runNextUpTo(Time until, Pre&& pre) {
    skipStale();
    if (noEntries() || whenOf(frontKey()) > until) return false;
    fireFront(std::forward<Pre>(pre));
    return true;
  }

  /// Like runNextUpTo, but with a *strict* bound: only events with time
  /// < `bound` fire. This is the PDES window loop body — a conservative
  /// time window [W, W + lookahead) is open on the right, because a
  /// cross-shard message generated inside the window can carry a
  /// timestamp of exactly W + lookahead and must still be delivered
  /// before any local event at that time is considered.
  template <typename Pre>
  bool runNextBefore(Time bound, Pre&& pre) {
    skipStale();
    if (noEntries() || whenOf(frontKey()) >= bound) return false;
    fireFront(std::forward<Pre>(pre));
    return true;
  }

  /// Pop and return the earliest live event's action (with its time).
  /// Requires !empty(). Slow path (two closure relocations) — the
  /// simulator uses runNext(); this remains for direct-queue callers.
  std::pair<Time, EventFn> pop() {
    skipStale();
    COMB_ASSERT(!noEntries(), "pop() on an empty event queue");
    const Key e = frontKey();
    popFront();
    Slot& s = slotRef(slotOf(e));
    EventFn fn = std::move(s.fn);
    s.seq = kDeadSeq;
    recycleSlot(slotOf(e));
    return {whenOf(e), std::move(fn)};
  }

  std::uint64_t scheduledCount() const { return nextSeq_; }

  /// Events currently scheduled (not fired, not cancelled). Every heap
  /// entry is live except the stale remnants of cancelled events.
  std::uint64_t liveEvents() const {
    return heap_.size() + drain_.size() - staleEntries_;
  }
  /// Slab high-water mark — slots ever allocated (pool introspection).
  std::size_t poolCapacity() const { return slotCount_; }

 private:
  friend class EventHandle;

  /// Pop the front entry and run its closure in place. Requires a live
  /// front entry (callers have pruned stale ones).
  template <typename Pre>
  Time fireFront(Pre&& pre) {
    const Key e = frontKey();
    popFront();
    // Prefetch the next few events' slots: big simulations visit slots
    // in time order, not pool order, so those lines are usually cold,
    // and one event of work is too little to cover a memory fetch.
    // Drain entries are exact next-to-run predictions; heap root-region
    // entries are best guesses (pushes from the running closure can
    // displace them — a harmless mispredict; stale entries still point
    // at valid pool memory, so this is always safe).
    if (const std::size_t m = drain_.size(); m != 0) {
      const std::size_t end = m < 3 ? m : 3;
      for (std::size_t c = 1; c <= end; ++c)
        prefetchSlot(slotOf(drain_[m - c]));
    }
    if (const std::size_t n = heap_.size(); n != 0) {
      const std::size_t end = n < 5 ? n : 5;
      for (std::size_t c = 0; c < end; ++c) prefetchSlot(slotOf(heap_[c]));
    }
    const std::uint32_t slot = slotOf(e);
    Slot& s = slotRef(slot);
    s.seq = kDeadSeq;
    // Destroys the closure and recycles the slot on both the normal and
    // the unwinding path (a throwing event must not leak its captures).
    struct Finish {
      EventQueue* q;
      std::uint32_t slot;
      ~Finish() { q->recycleSlot(slot); }
    } finish{this, slot};
    const Time when = whenOf(e);
    pre(when);
    s.fn();
    return when;
  }

  struct alignas(64) Slot {  // exactly one cache line (see capacity note)
    EventFn fn;
    std::uint64_t seq = kDeadSeq;  ///< seq of the occupant; kDeadSeq if free
  };
  static_assert(sizeof(Slot) == 64);

  static std::uint32_t slotOf(Key e) {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(e) &
                                      (kMaxSlots - 1));
  }
  static std::uint64_t seqOf(Key e) {
    return static_cast<std::uint64_t>(e) >> kSlotBits;
  }
  static Time whenOf(Key e) {
    return std::bit_cast<Time>(static_cast<std::uint64_t>(e >> 64));
  }

  Slot& slotRef(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Slot& slotRef(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  void prefetchSlot(std::uint32_t slot) const {
#if defined(__GNUC__)
    __builtin_prefetch(&slotRef(slot), 1 /*for write*/, 1);
#endif
  }

  bool slotMatches(std::uint32_t slot, std::uint64_t seq) const {
    return slot < slotCount_ && slotRef(slot).seq == seq;
  }

  /// Destroy the slot's closure (if any) in place, then return the slot
  /// to the free list. The destruction order is re-entrancy-safe without
  /// moving the closure out first: while the destructor runs the slot is
  /// dead (seq == kDeadSeq) but not yet on the free list, so a destructor
  /// that re-enters the queue (a captured Task's teardown can cancel or
  /// schedule) cannot be handed this slot mid-teardown.
  void recycleSlot(std::uint32_t slot) {
    slotRef(slot).fn.reset();
    freeSlots_.push_back(slot);
  }

  void cancelEvent(std::uint32_t slot, std::uint64_t seq) {
    // Releasing eagerly (rather than flagging) destroys the closure now,
    // freeing captured resources; the heap entry goes stale and is
    // pruned by skipStale() when it reaches the top.
    if (!slotMatches(slot, seq)) return;
    slotRef(slot).seq = kDeadSeq;
    ++staleEntries_;
    recycleSlot(slot);
  }

  bool eventPending(std::uint32_t slot, std::uint64_t seq) const {
    return slotMatches(slot, seq);
  }

  bool entryLive(Key e) const { return slotRef(slotOf(e)).seq == seqOf(e); }

  bool noEntries() const { return heap_.empty() && drain_.empty(); }

  /// Smallest pending key across both stores. Requires !noEntries().
  /// Keys are globally unique (seq never repeats), so the minimum — and
  /// with it the pop order — is independent of which store holds what.
  Key frontKey() const {
    if (drain_.empty()) return heap_.front();
    if (heap_.empty() || drain_.back() < heap_.front()) return drain_.back();
    return heap_.front();
  }

  /// Remove the entry frontKey() returned. Requires !noEntries().
  void popFront() {
    if (!drain_.empty() &&
        (heap_.empty() || drain_.back() < heap_.front()))
      drain_.pop_back();
    else
      heapPopTop();
  }

  // Pending entries live in two stores, both surfacing their minimum in
  // O(1); the queue's front is the smaller of the two minima:
  //   * drain_ — keys sorted descending, so back() is the minimum and a
  //     pop is O(1). Filled in one shot when a burst of pushes arrives
  //     with nothing else in flight (sweep-point startup, batch
  //     injection): one sequential sort then replaces heapify plus a
  //     sift-down per pop, and the next events to run are known exactly,
  //     which makes their slot prefetches always right.
  //   * heap_ — 4-ary min-heap over packed keys for everything scheduled
  //     while a drain is in progress (the general interleaved case),
  //     lazily ordered: heap_[0..ordered_) satisfies the heap property,
  //     entries beyond are an unordered tail of recent pushes. The tail
  //     is folded in at the next top access — one sift-up per entry when
  //     small, one O(n) Floyd rebuild when a burst accumulated.
  // Ordering is a pure function of the (unique) keys, so the store split
  // and build strategy cannot affect pop order, i.e. determinism.
  // A child block (4 entries x 16 bytes) is exactly one cache line, so a
  // sift-down level costs one line fetch. Sifts move a hole instead of
  // swapping.

  /// Place `v`, conceptually at index `i`, into the heap prefix [0, n).
  // 4-ary: one node's children fill exactly one cache line of keys, and
  // measured against 2-ary (deeper) and 8-ary (more compares per level)
  // this arity wins on the schedule/run benchmark at every queue depth.
  static constexpr std::size_t kAryShift = 2;
  static constexpr std::size_t kAry = std::size_t{1} << kAryShift;

  void siftDownHole(std::size_t i, Key v, std::size_t n) {
    for (;;) {
      const std::size_t child = (i << kAryShift) + 1;
      if (child >= n) break;
      std::size_t m = child;
      const std::size_t end = child + kAry < n ? child + kAry : n;
      for (std::size_t c = child + 1; c < end; ++c)
        if (heap_[c] < heap_[m]) m = c;
      if (v <= heap_[m]) break;
      heap_[i] = heap_[m];
      i = m;
    }
    heap_[i] = v;
  }

  void siftUp(std::size_t i) {
    const Key e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> kAryShift;
      if (heap_[parent] <= e) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Below this size a burst is not worth a sort — heap sifts on a
  /// cache-resident array are already cheap.
  static constexpr std::size_t kSortDrainMin = 64;

  void ensureOrdered() {
    const std::size_t n = heap_.size();
    if (ordered_ == n) return;
    if (ordered_ == 0 && drain_.empty() && n >= kSortDrainMin) {
      // Nothing in flight and a whole burst pending: sort it once and
      // drain from the back (see the store comment below).
      std::sort(heap_.begin(), heap_.end(),
                [](Key a, Key b) { return a > b; });
      drain_.swap(heap_);  // heap_ is now empty; ordered_ == 0 == size
      return;
    }
    if (n - ordered_ > ordered_ / 4 + 1) {
      // A burst of pushes since the last pop: Floyd bottom-up rebuild,
      // linear time however large the tail (amortized O(4) per push even
      // in a steady push-burst/pop cadence).
      if (n >= 2)
        for (std::size_t i = ((n - 2) >> kAryShift) + 1; i-- > 0;)
          siftDownHole(i, heap_[i], n);
    } else {
      for (std::size_t i = ordered_; i < n; ++i) siftUp(i);
    }
    ordered_ = n;
  }

  /// Pre: ensureOrdered() has run and the heap is non-empty.
  void heapPopTop() {
    const std::size_t n = heap_.size() - 1;
    const Key last = heap_[n];
    heap_.pop_back();
    ordered_ = n;
    if (n != 0) siftDownHole(0, last, n);
  }

  /// Drop front entries whose slot has been cancelled (released and
  /// possibly reused for a later event — detected by the seq mismatch).
  /// staleEntries_ counts cancelled entries still queued, so with no
  /// cancellations outstanding — the common case — this is one register
  /// test, no slot memory touched. Also folds pending pushes into heap
  /// order; every front access goes through here first.
  void skipStale() {
    ensureOrdered();
    while (staleEntries_ != 0 && !noEntries() && !entryLive(frontKey())) {
      popFront();
      --staleEntries_;
    }
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;  ///< stable slot storage
  std::vector<std::uint32_t> freeSlots_;
  std::vector<Key> drain_;  ///< sorted descending; back() = minimum
  std::vector<Key> heap_;
  std::size_t ordered_ = 0;  ///< heap-property prefix of heap_ (see above)
  std::uint32_t slotCount_ = 0;  ///< slots ever allocated (high-water mark)
  std::uint64_t nextSeq_ = 0;
  std::uint64_t staleEntries_ = 0;  ///< cancelled entries still queued
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancelEvent(slot_, seq_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->eventPending(slot_, seq_);
}

}  // namespace comb::sim
