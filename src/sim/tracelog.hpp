// TraceLog: structured event capture across the simulated substrate.
//
// When attached to a Simulator, instrumented components (CPU, links, NICs,
// transports, MiniMPI) emit one record per interesting event into a
// bounded ring. The result is a per-run timeline that answers "what
// actually happened": every interrupt, every packet, every protocol
// transition, every MPI call — the observability layer behind
// `comb stats --trace`.
//
// Disabled (no log attached) the cost is a single pointer test per
// emission site.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace comb::sim {

enum class TraceCategory : std::uint8_t {
  Process,    ///< process spawn/finish
  Compute,    ///< user compute on a CPU (label: start/done; a = seconds)
  Interrupt,  ///< ISR raised (a = service seconds)
  Packet,     ///< packet injected into the fabric (a = wire bytes)
  NicEvent,   ///< NIC-level event queued (label: kind)
  Protocol,   ///< transport state transition (label: e.g. "rts", "cts")
  MpiCall,    ///< MiniMPI entry point (label: call name; a = bytes)
  Fault,      ///< injected fault / reliability action (label: e.g.
              ///< "up0:drop", "retransmit"; a = bytes, b = seq/msgId)
};

const char* traceCategoryName(TraceCategory c);

struct TraceRecord {
  Time t = 0;
  TraceCategory cat = TraceCategory::Process;
  int node = -1;  ///< node id; -1 when not node-specific
  std::string label;
  double a = 0;  ///< category-specific payload (bytes, seconds, handle...)
  double b = 0;
};

class TraceLog {
 public:
  /// Ring capacity: oldest records are dropped past this.
  explicit TraceLog(std::size_t capacity = 1 << 16);

  void emit(Time t, TraceCategory cat, int node, std::string label,
            double a = 0, double b = 0);

  const std::deque<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::size_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Count records in a category (optionally for one node).
  std::size_t count(TraceCategory cat, int node = -1) const;

  /// Records of one category, in time order.
  std::vector<const TraceRecord*> select(TraceCategory cat,
                                         int node = -1) const;

  /// Human-readable dump of (up to) the last `maxRows` records.
  void dump(std::ostream& out, std::size_t maxRows = 50) const;

  /// Per-category counts summary line.
  std::string summary() const;

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::size_t dropped_ = 0;
};

}  // namespace comb::sim
