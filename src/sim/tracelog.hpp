// TraceLog: structured event capture across the simulated substrate.
//
// When attached to a Simulator, instrumented components (CPU, links, NICs,
// transports, MiniMPI, the COMB workers) emit records into a bounded ring.
// The result is a per-run timeline that answers "what actually happened":
// every interrupt, every packet, every protocol transition, every MPI
// call, every benchmark phase — the observability layer behind
// `comb trace` and the `--trace` flag of the figure benches.
//
// Records come in four phases:
//   * Instant   — a point event (a packet injected, a fault fired);
//   * Begin/End — a matched span (an MPI call, a DMA, a work phase);
//     pairing is enforced per (category, node) track: an End without an
//     open Begin, or with a different label, throws.
//   * Complete  — a span whose duration is known at emission time (wire
//     transit, interrupt service); duration rides in `dur`.
//
// Labels are interned: emission sites pass a string_view, the log resolves
// it to a small integer id through a transparent hash lookup, and records
// store only the id. After the first emission of each distinct label the
// log performs no heap allocation — the ring is preallocated at
// construction — so steady-state tracing preserves the allocation-free
// simulator hot path (enforced by test_tracelog).
//
// Disabled (no log attached) the cost is a single pointer test per
// emission site.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace comb::sim {

enum class TraceCategory : std::uint8_t {
  Process,    ///< process spawn/finish
  Compute,    ///< user compute on a CPU (span; a = requested seconds)
  Interrupt,  ///< ISR service window (complete; a = service seconds)
  Packet,     ///< packet injected into the fabric (a = wire bytes)
  Wire,       ///< wire transit, serialize->arrival (complete; a = bytes)
  NicEvent,   ///< NIC-level event queued / DMA window (label: kind)
  Protocol,   ///< transport state transition (label: e.g. "rts", "cts")
  MpiCall,    ///< MiniMPI entry point (span; label: call name; a = bytes)
  Phase,      ///< benchmark phase (span; label: "post", "work", "wait"...)
  Fault,      ///< injected fault / reliability action (label: e.g.
              ///< "up0:drop", "retransmit"; a = bytes, b = seq/msgId)
};

/// Number of TraceCategory enumerators (used for per-track bookkeeping).
inline constexpr std::size_t kTraceCategoryCount = 10;

const char* traceCategoryName(TraceCategory c);

enum class TracePhase : std::uint8_t {
  Instant,   ///< point event
  Begin,     ///< span opens
  End,       ///< span closes (must match the innermost open Begin)
  Complete,  ///< self-contained span; duration in TraceRecord::dur
};

/// Interned label id; resolve with TraceLog::labelName().
using TraceLabelId = std::uint32_t;

struct TraceRecord {
  Time t = 0;
  Time dur = 0;  ///< Complete spans only: duration in seconds
  TraceCategory cat = TraceCategory::Process;
  TracePhase phase = TracePhase::Instant;
  int node = -1;  ///< node id; -1 when not node-specific
  TraceLabelId label = 0;
  double a = 0;  ///< category-specific payload (bytes, seconds, handle...)
  double b = 0;
};

class TraceLog {
 public:
  /// Ring capacity: oldest records are dropped past this. The ring is
  /// preallocated here so steady-state emission never allocates.
  explicit TraceLog(std::size_t capacity = 1 << 16);

  // --- emission ----------------------------------------------------------
  void emit(Time t, TraceCategory cat, int node, std::string_view label,
            double a = 0, double b = 0);
  /// Open a span on the (cat, node) track.
  void beginSpan(Time t, TraceCategory cat, int node, std::string_view label,
                 double a = 0);
  /// Close the innermost span on the (cat, node) track. The label must
  /// match the open Begin; an unmatched End throws comb::Error.
  void endSpan(Time t, TraceCategory cat, int node, std::string_view label,
               double a = 0);
  /// A span whose duration is already known (wire transit, ISR window).
  void complete(Time t, Time dur, TraceCategory cat, int node,
                std::string_view label, double a = 0, double b = 0);

  /// Intern a label without emitting (e.g. to pre-register hot labels).
  TraceLabelId intern(std::string_view label);
  /// Resolve an interned label id back to its text.
  std::string_view labelName(TraceLabelId id) const;
  /// Number of distinct labels interned so far.
  std::size_t labelCount() const { return labels_.size(); }

  // --- access ------------------------------------------------------------
  std::size_t size() const { return size_; }
  /// Record `i` in emission (time) order, 0 = oldest retained.
  const TraceRecord& record(std::size_t i) const;
  std::size_t dropped() const { return dropped_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Open (unclosed) spans across all tracks — 0 after a balanced run.
  std::size_t openSpans() const;
  void clear();

  /// Count records in a category (optionally for one node).
  std::size_t count(TraceCategory cat, int node = -1) const;
  /// Count span-begin records in a category (a span counted once).
  std::size_t countSpans(TraceCategory cat, int node = -1) const;

  /// Records of one category, in time order.
  std::vector<const TraceRecord*> select(TraceCategory cat,
                                         int node = -1) const;
  /// Records of one category carrying this exact label, in time order.
  std::vector<const TraceRecord*> select(TraceCategory cat,
                                         std::string_view label,
                                         int node = -1) const;

  /// Merge per-shard logs into one time-ordered log. Records sort by
  /// (time, part index, emission order) — deterministic given the
  /// inputs — and labels are re-interned. A single input is returned
  /// unchanged, so the serial path round-trips byte-identically; null
  /// parts are skipped (nullptr when all are). Dropped-record counts
  /// sum. The result is an analysis artifact: span-pairing state is not
  /// reconstructed, so do not continue Begin/End emission into it.
  static std::unique_ptr<TraceLog> merge(
      std::vector<std::unique_ptr<TraceLog>> parts);

  /// Human-readable dump of (up to) the last `maxRows` records.
  void dump(std::ostream& out, std::size_t maxRows = 50) const;

  /// Per-category counts summary line.
  std::string summary() const;

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  void push(const TraceRecord& r);
  static std::size_t trackIndex(TraceCategory cat, int node);

  std::vector<TraceRecord> ring_;  ///< fixed storage, length == capacity
  std::size_t head_ = 0;           ///< index of the oldest record
  std::size_t size_ = 0;           ///< live records (<= capacity)
  std::size_t dropped_ = 0;
  bool dropWarned_ = false;

  std::vector<const std::string*> labels_;  ///< id -> text (owned by map)
  std::unordered_map<std::string, TraceLabelId, SvHash, SvEq> labelIds_;

  /// Per-(category, node) stacks of open span labels; node -1 and
  /// "unknown node" share a track per category.
  std::unordered_map<std::size_t, std::vector<TraceLabelId>> openSpans_;
};

}  // namespace comb::sim
