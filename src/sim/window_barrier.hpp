// EpochBarrier: the window barrier of the sharded executor.
//
// A classic centralized sense-reversing barrier, built from two atomics:
// an arrival counter and a monotonically increasing generation (epoch).
// The last thread to arrive runs a completion function — the executor
// uses it to plan the next conservative window (LBTS bounds, termination)
// — and then bumps the generation, releasing everyone. Waiters spin a
// bounded number of iterations on the generation and then fall back to
// std::atomic::wait (a futex on Linux), so a barrier crossing costs tens
// of nanoseconds when shards arrive together and never burns a core when
// they don't.
//
// Memory ordering: every arrival is an acq_rel RMW on `arrived_`, so the
// last arriver observes all earlier arrivers' writes; the generation bump
// is a release store that waiters acquire, so the completion function's
// writes (and, transitively, every participant's pre-barrier writes) are
// visible to every participant after the crossing. This is exactly the
// happens-before edge the executor's phase discipline relies on — shard
// state, mailbox rings and window bounds cross threads only over this
// barrier — and it is visible to ThreadSanitizer.
//
// With a single participant the barrier degenerates to an inline call of
// the completion function: the one-worker executor pays no atomics beyond
// two uncontended RMWs and never sleeps.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"

namespace comb::sim {

class EpochBarrier {
 public:
  explicit EpochBarrier(int participants) : participants_(participants) {
    COMB_REQUIRE(participants >= 1, "barrier needs at least one participant");
  }
  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Arrive at the barrier; the last arriver runs `completion()` before
  /// releasing the others. Returns after every participant of this epoch
  /// has arrived and the completion has run.
  template <typename F>
  void arriveAndWait(F&& completion) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Reset before the release: no thread can re-arrive until it sees
      // the generation bump, which happens strictly after this store.
      arrived_.store(0, std::memory_order_relaxed);
      completion();
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
      return;
    }
    // Bounded spin: windows are typically microseconds of work, so the
    // other shards are almost always a few hundred cycles away. Fall
    // back to the futex only when they are genuinely late (imbalanced
    // partitions, oversubscribed host).
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    while (generation_.load(std::memory_order_acquire) == gen)
      generation_.wait(gen, std::memory_order_acquire);
  }

  int participants() const { return participants_; }
  /// Number of completed crossings — observability for tests.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  static constexpr int kSpinLimit = 2048;

  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace comb::sim
