#include "sim/shard_context.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace comb::sim {

/// Self-destroying wrapper coroutine that drives a spawned process and
/// reports its fate to the context.
struct ShardContext::Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    // runProcess catches everything; reaching here means a bug in the
    // wrapper itself.
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

ShardContext::Detached ShardContext::runProcess(Task<void> t,
                                                std::string name) {
  ++liveProcesses_;
  // Instants, not spans: process lifetimes interleave freely, which the
  // per-track span stack intentionally rejects. Guarded so the label
  // concatenation is not paid when tracing is detached.
  if (tracing()) emitTrace(TraceCategory::Process, -1, name + ":start");
  try {
    co_await std::move(t);
  } catch (...) {
    recordFailure(std::current_exception(), name);
  }
  if (tracing()) emitTrace(TraceCategory::Process, -1, name + ":finish");
  --liveProcesses_;
}

ShardContext::~ShardContext() {
  // Suspended processes hold frames owned by the wrapper coroutines, whose
  // frames are owned by pending events (resumption closures). Dropping the
  // queue leaks those frames; in practice simulations run to completion or
  // the process is being torn down. Warn to surface misuse in tests.
  if (liveProcesses_ > 0) {
    COMB_LOG(Warn) << "ShardContext destroyed with " << liveProcesses_
                   << " live process(es); their frames leak";
  }
}

void ShardContext::spawn(Task<void> process, std::string name) {
  COMB_REQUIRE(process.valid(), "spawning an empty Task");
  // Defer the first step through the event queue so that spawn order ==
  // first-run order regardless of where spawn() is called from. The task
  // lives inside the event closure (in the event pool, no heap detour);
  // if the context is destroyed before the event fires, the pool
  // destroys the closure and with it the never-started task.
  schedule(0.0,
           [this, t = std::move(process), name = std::move(name)]() mutable {
             runProcess(std::move(t), std::move(name));
           });
}

void ShardContext::recordFailure(std::exception_ptr e,
                                 const std::string& name) {
  if (!failure_) {
    failure_ = e;
    failedProcess_ = name.empty() ? "<unnamed>" : name;
  } else {
    COMB_LOG(Warn) << "additional process failure in '" << name
                   << "' suppressed (first failure wins)";
  }
}

void ShardContext::rethrowIfFailed() {
  if (failure_) {
    auto e = std::exchange(failure_, nullptr);
    COMB_LOG(Error) << "simulated process '" << failedProcess_ << "' failed";
    std::rethrow_exception(e);
  }
}

bool ShardContext::step() {
  rethrowIfFailed();
  if (queue_.empty()) return false;
  // Run the closure in place from its pool slot — no per-event move of
  // the callable; the clock/trace bookkeeping runs just before it.
  queue_.runNext([this](Time when) {
    COMB_ASSERT(when >= now_, "event queue went backwards in time");
    now_ = when;
    if (trace_) trace_(now_, eventsExecuted_);
    ++eventsExecuted_;
  });
  rethrowIfFailed();
  return true;
}

Time ShardContext::run(Time until) {
  rethrowIfFailed();
  // Fused loop: runNextUpTo decides "pending and due" and fires the
  // event in one queue operation, instead of the empty()/nextTime()/
  // step() triple that would prune stale heap entries three times per
  // event on this hot path.
  const auto pre = [this](Time when) {
    COMB_ASSERT(when >= now_, "event queue went backwards in time");
    now_ = when;
    if (trace_) trace_(now_, eventsExecuted_);
    ++eventsExecuted_;
  };
  while (queue_.runNextUpTo(until, pre)) rethrowIfFailed();
  if (!queue_.empty() && now_ < until) now_ = until;
  return now_;
}

void ShardContext::runWindow(Time bound) {
  const auto pre = [this](Time when) {
    COMB_ASSERT(when >= now_, "event queue went backwards in time");
    now_ = when;
    if (trace_) trace_(now_, eventsExecuted_);
    ++eventsExecuted_;
  };
  // Failures are recorded, not thrown: the Executor inspects every shard
  // after the barrier and rethrows the lowest shard index's exception,
  // making the reported failure deterministic under any thread schedule.
  while (!failure_ && queue_.runNextBefore(bound, pre)) {
  }
}

}  // namespace comb::sim
