#include "sim/tracelog.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

namespace comb::sim {

const char* traceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::Process: return "process";
    case TraceCategory::Compute: return "compute";
    case TraceCategory::Interrupt: return "interrupt";
    case TraceCategory::Packet: return "packet";
    case TraceCategory::Wire: return "wire";
    case TraceCategory::NicEvent: return "nic-event";
    case TraceCategory::Protocol: return "protocol";
    case TraceCategory::MpiCall: return "mpi-call";
    case TraceCategory::Phase: return "phase";
    case TraceCategory::Fault: return "fault";
  }
  return "?";
}

namespace {

const char* tracePhaseMark(TracePhase p) {
  switch (p) {
    case TracePhase::Instant: return " ";
    case TracePhase::Begin: return "[";
    case TracePhase::End: return "]";
    case TracePhase::Complete: return "=";
  }
  return "?";
}

}  // namespace

TraceLog::TraceLog(std::size_t capacity) {
  COMB_REQUIRE(capacity > 0, "trace capacity must be positive");
  ring_.resize(capacity);
}

TraceLabelId TraceLog::intern(std::string_view label) {
  if (const auto it = labelIds_.find(label); it != labelIds_.end())
    return it->second;
  const auto id = static_cast<TraceLabelId>(labels_.size());
  const auto [it, inserted] = labelIds_.emplace(std::string(label), id);
  COMB_ASSERT(inserted, "label interned twice");
  labels_.push_back(&it->first);
  return id;
}

std::string_view TraceLog::labelName(TraceLabelId id) const {
  COMB_REQUIRE(id < labels_.size(), "unknown trace label id");
  return *labels_[id];
}

std::unique_ptr<TraceLog> TraceLog::merge(
    std::vector<std::unique_ptr<TraceLog>> parts) {
  std::erase_if(parts, [](const auto& p) { return p == nullptr; });
  if (parts.empty()) return nullptr;
  if (parts.size() == 1) return std::move(parts.front());
  std::size_t capacity = 0, dropped = 0, total = 0;
  for (const auto& p : parts) {
    capacity += p->capacity();
    dropped += p->dropped();
    total += p->size();
  }
  auto out = std::make_unique<TraceLog>(std::max(capacity, total));
  struct Cursor {
    std::size_t part;
    std::size_t idx;
  };
  std::vector<Cursor> order;
  order.reserve(total);
  for (std::size_t pi = 0; pi < parts.size(); ++pi)
    for (std::size_t i = 0; i < parts[pi]->size(); ++i)
      order.push_back(Cursor{pi, i});
  std::sort(order.begin(), order.end(),
            [&parts](const Cursor& a, const Cursor& b) {
              const Time ta = parts[a.part]->record(a.idx).t;
              const Time tb = parts[b.part]->record(b.idx).t;
              if (ta != tb) return ta < tb;
              if (a.part != b.part) return a.part < b.part;
              return a.idx < b.idx;
            });
  for (const Cursor& c : order) {
    TraceRecord r = parts[c.part]->record(c.idx);
    r.label = out->intern(parts[c.part]->labelName(r.label));
    out->push(r);
  }
  out->dropped_ += dropped;
  return out;
}

void TraceLog::push(const TraceRecord& r) {
  if (size_ == ring_.size()) {
    ring_[head_] = r;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    if (!dropWarned_) {
      dropWarned_ = true;
      COMB_LOG(Warn) << "trace ring full (capacity " << ring_.size()
                     << "): oldest records are being dropped; raise the "
                        "trace capacity for complete timelines";
    }
    return;
  }
  ring_[(head_ + size_) % ring_.size()] = r;
  ++size_;
}

const TraceRecord& TraceLog::record(std::size_t i) const {
  COMB_REQUIRE(i < size_, "trace record index out of range");
  return ring_[(head_ + i) % ring_.size()];
}

void TraceLog::emit(Time t, TraceCategory cat, int node,
                    std::string_view label, double a, double b) {
  TraceRecord r;
  r.t = t;
  r.cat = cat;
  r.phase = TracePhase::Instant;
  r.node = node;
  r.label = intern(label);
  r.a = a;
  r.b = b;
  push(r);
}

std::size_t TraceLog::trackIndex(TraceCategory cat, int node) {
  // node -1 maps to track 0 of its category; nodes are dense small ints.
  return static_cast<std::size_t>(node + 1) * kTraceCategoryCount +
         static_cast<std::size_t>(cat);
}

void TraceLog::beginSpan(Time t, TraceCategory cat, int node,
                         std::string_view label, double a) {
  TraceRecord r;
  r.t = t;
  r.cat = cat;
  r.phase = TracePhase::Begin;
  r.node = node;
  r.label = intern(label);
  r.a = a;
  openSpans_[trackIndex(cat, node)].push_back(r.label);
  push(r);
}

void TraceLog::endSpan(Time t, TraceCategory cat, int node,
                       std::string_view label, double a) {
  const TraceLabelId id = intern(label);
  auto& stack = openSpans_[trackIndex(cat, node)];
  if (stack.empty())
    throw Error(strFormat("trace span end '%.*s' (%s, node %d) without an "
                          "open begin",
                          static_cast<int>(label.size()), label.data(),
                          traceCategoryName(cat), node));
  if (stack.back() != id)
    throw Error(strFormat(
        "trace span end '%.*s' does not match open span '%s' (%s, node %d)",
        static_cast<int>(label.size()), label.data(),
        std::string(labelName(stack.back())).c_str(), traceCategoryName(cat),
        node));
  stack.pop_back();
  TraceRecord r;
  r.t = t;
  r.cat = cat;
  r.phase = TracePhase::End;
  r.node = node;
  r.label = id;
  r.a = a;
  push(r);
}

void TraceLog::complete(Time t, Time dur, TraceCategory cat, int node,
                        std::string_view label, double a, double b) {
  COMB_ASSERT(dur >= 0.0, "negative trace span duration");
  TraceRecord r;
  r.t = t;
  r.dur = dur;
  r.cat = cat;
  r.phase = TracePhase::Complete;
  r.node = node;
  r.label = intern(label);
  r.a = a;
  r.b = b;
  push(r);
}

std::size_t TraceLog::openSpans() const {
  std::size_t n = 0;
  for (const auto& [track, stack] : openSpans_) n += stack.size();
  return n;
}

void TraceLog::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  dropWarned_ = false;
  openSpans_.clear();
  // Interned labels survive clear(): ids held by emitters stay valid.
}

std::size_t TraceLog::count(TraceCategory cat, int node) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = record(i);
    if (r.cat == cat && (node < 0 || r.node == node)) ++n;
  }
  return n;
}

std::size_t TraceLog::countSpans(TraceCategory cat, int node) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = record(i);
    if (r.cat != cat || (node >= 0 && r.node != node)) continue;
    if (r.phase == TracePhase::Begin || r.phase == TracePhase::Complete) ++n;
  }
  return n;
}

std::vector<const TraceRecord*> TraceLog::select(TraceCategory cat,
                                                 int node) const {
  std::vector<const TraceRecord*> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = record(i);
    if (r.cat == cat && (node < 0 || r.node == node)) out.push_back(&r);
  }
  return out;
}

std::vector<const TraceRecord*> TraceLog::select(TraceCategory cat,
                                                 std::string_view label,
                                                 int node) const {
  std::vector<const TraceRecord*> out;
  const auto it = labelIds_.find(label);
  if (it == labelIds_.end()) return out;  // label never emitted
  const TraceLabelId id = it->second;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = record(i);
    if (r.cat == cat && r.label == id && (node < 0 || r.node == node))
      out.push_back(&r);
  }
  return out;
}

void TraceLog::dump(std::ostream& out, std::size_t maxRows) const {
  const std::size_t start = size_ > maxRows ? size_ - maxRows : 0;
  if (dropped_ > 0)
    out << "(" << dropped_ << " older records dropped from the ring)\n";
  if (start > 0) out << "(showing last " << maxRows << " records)\n";
  for (std::size_t i = start; i < size_; ++i) {
    const TraceRecord& r = record(i);
    out << strFormat("%12.6f ms %s %-9s", r.t * 1e3, tracePhaseMark(r.phase),
                     traceCategoryName(r.cat));
    if (r.node >= 0) out << strFormat("  n%d", r.node);
    out << "  " << labelName(r.label);
    if (r.phase == TracePhase::Complete)
      out << strFormat("  dur=%.3gus", r.dur * 1e6);
    if (r.a != 0) out << strFormat("  a=%.6g", r.a);
    if (r.b != 0) out << strFormat("  b=%.6g", r.b);
    out << '\n';
  }
}

std::string TraceLog::summary() const {
  std::string s;
  for (const TraceCategory cat :
       {TraceCategory::Process, TraceCategory::Compute,
        TraceCategory::Interrupt, TraceCategory::Packet, TraceCategory::Wire,
        TraceCategory::NicEvent, TraceCategory::Protocol,
        TraceCategory::MpiCall, TraceCategory::Phase, TraceCategory::Fault}) {
    const auto n = count(cat);
    if (n > 0) {
      if (!s.empty()) s += ", ";
      s += strFormat("%s=%zu", traceCategoryName(cat), n);
    }
  }
  if (dropped_ > 0) s += strFormat(" (+%zu dropped)", dropped_);
  return s.empty() ? "no trace records" : s;
}

}  // namespace comb::sim
