#include "sim/tracelog.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::sim {

const char* traceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::Process: return "process";
    case TraceCategory::Compute: return "compute";
    case TraceCategory::Interrupt: return "interrupt";
    case TraceCategory::Packet: return "packet";
    case TraceCategory::NicEvent: return "nic-event";
    case TraceCategory::Protocol: return "protocol";
    case TraceCategory::MpiCall: return "mpi-call";
    case TraceCategory::Fault: return "fault";
  }
  return "?";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  COMB_REQUIRE(capacity > 0, "trace capacity must be positive");
}

void TraceLog::emit(Time t, TraceCategory cat, int node, std::string label,
                    double a, double b) {
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(TraceRecord{t, cat, node, std::move(label), a, b});
}

void TraceLog::clear() {
  records_.clear();
  dropped_ = 0;
}

std::size_t TraceLog::count(TraceCategory cat, int node) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.cat == cat && (node < 0 || r.node == node)) ++n;
  return n;
}

std::vector<const TraceRecord*> TraceLog::select(TraceCategory cat,
                                                 int node) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : records_)
    if (r.cat == cat && (node < 0 || r.node == node)) out.push_back(&r);
  return out;
}

void TraceLog::dump(std::ostream& out, std::size_t maxRows) const {
  const std::size_t start =
      records_.size() > maxRows ? records_.size() - maxRows : 0;
  if (dropped_ > 0)
    out << "(" << dropped_ << " older records dropped from the ring)\n";
  if (start > 0) out << "(showing last " << maxRows << " records)\n";
  for (std::size_t i = start; i < records_.size(); ++i) {
    const auto& r = records_[i];
    out << strFormat("%12.6f ms  %-9s", r.t * 1e3, traceCategoryName(r.cat));
    if (r.node >= 0) out << strFormat("  n%d", r.node);
    out << "  " << r.label;
    if (r.a != 0) out << strFormat("  a=%.6g", r.a);
    if (r.b != 0) out << strFormat("  b=%.6g", r.b);
    out << '\n';
  }
}

std::string TraceLog::summary() const {
  std::string s;
  for (const TraceCategory cat :
       {TraceCategory::Process, TraceCategory::Compute,
        TraceCategory::Interrupt, TraceCategory::Packet,
        TraceCategory::NicEvent, TraceCategory::Protocol,
        TraceCategory::MpiCall}) {
    const auto n = count(cat);
    if (n > 0) {
      if (!s.empty()) s += ", ";
      s += strFormat("%s=%zu", traceCategoryName(cat), n);
    }
  }
  if (dropped_ > 0) s += strFormat(" (+%zu dropped)", dropped_);
  return s.empty() ? "no trace records" : s;
}

}  // namespace comb::sim
