// MailboxRing: the cross-shard message channel of the sharded executor.
//
// One ring exists per ordered shard pair (src, dst). The source shard's
// worker appends during the run phase of a window (postRemote is a plain
// append — no lock, no atomic); the destination shard's worker drains at
// the start of the next window's fold-in phase. The two phases are
// separated by the executor's EpochBarrier, whose release/acquire edge is
// the only synchronization the ring needs: at no instant do the producer
// and consumer touch it concurrently, so the ring is plain memory and
// ThreadSanitizer can verify the discipline end to end.
//
// Capacity is fixed (kSlots, sized for a typical window's traffic on one
// pair); bursts beyond it spill into a vector that retains its capacity
// across windows, so the steady state allocates nothing either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace comb::sim {

/// A timestamped cross-shard channel message. Ordering across sources is
/// by the packed (time, seq, src) key — time first, then the source's
/// deterministic message sequence, then the source shard id — which makes
/// the fold-in order (and therefore the destination shard's event order)
/// a pure function of the simulation state, never of thread scheduling.
struct RemoteEvent {
  Time when = 0;
  std::uint64_t seq = 0;
  std::uint32_t src = 0;
  EventFn fn;
};

class MailboxRing {
 public:
  /// Fixed slot count per shard pair. 64 events/window/pair covers every
  /// workload the suite runs (incast at 1024 nodes peaks well below it);
  /// overflow is correct, just a one-time vector growth.
  static constexpr std::size_t kSlots = 64;

  MailboxRing() { slots_.resize(kSlots); }

  /// Producer side (source shard's worker, run phase only).
  template <typename F>
  void push(Time when, std::uint64_t seq, std::uint32_t src, F&& fn) {
    RemoteEvent* ev;
    if (count_ < slots_.size()) {
      ev = &slots_[count_++];
    } else {
      spill_.emplace_back();
      ev = &spill_.back();
    }
    ev->when = when;
    ev->seq = seq;
    ev->src = src;
    ev->fn.emplace(std::forward<F>(fn));
  }

  bool empty() const { return count_ == 0 && spill_.empty(); }
  std::size_t size() const { return count_ + spill_.size(); }

  /// Consumer side (destination shard's worker, fold-in phase only):
  /// move every pending message into `out` in append order and leave the
  /// ring empty. Slot and spill storage is retained.
  void drainInto(std::vector<RemoteEvent>& out) {
    for (std::size_t i = 0; i < count_; ++i)
      out.push_back(std::move(slots_[i]));
    for (RemoteEvent& ev : spill_) out.push_back(std::move(ev));
    count_ = 0;
    spill_.clear();
  }

 private:
  std::vector<RemoteEvent> slots_;
  std::size_t count_ = 0;
  std::vector<RemoteEvent> spill_;
};

}  // namespace comb::sim
