// Executor: top-level driver for one simulation run, serial or sharded.
//
// The Executor owns N ShardContexts and advances them together in
// conservative time windows (classic time-window / LBTS PDES).
// Components never see the Executor on the hot path — they schedule on
// their shard's ShardContext; the Executor only decides *when each shard
// may run* and carries cross-shard messages between windows.
//
// Steady state (multi-shard): a persistent worker team — the calling
// thread plus workers-1 long-lived threads, optionally pinned by an
// affinity policy — cycles through two phases per window, separated by a
// lock-free EpochBarrier (sim/window_barrier.hpp):
//
//   fold-in phase: each worker drains the mailbox rings targeting its
//     shards (sorted by the packed (time, seq, src) key — deterministic)
//     and publishes each shard's earliest pending event time T_d;
//   barrier (completion = planWindow): the last arriver computes every
//     shard's window bound from the lookahead matrix,
//        bound_d = min( cap, min over all s of T_s + L[s][d] ),
//     the per-shard LBTS (L[d][d] is d's min feedback cycle: d's own
//     earliest event can bounce off a neighbor and return) — or flags
//     termination when min T_s >= cap;
//   run phase: each shard runs its local events with time < bound_d;
//     cross-shard messages append to the per-pair mailbox rings
//     (sim/mailbox.hpp) — postRemote is a plain store, no lock;
//   barrier; repeat.
//
// L is the min-plus closure of the per-pair direct channel lookahead
// matrix (setLookaheadMatrix): L[s][d] lower-bounds the virtual-time
// distance of *any* influence from shard s to shard d, along direct
// edges and through intermediaries alike. An event shard s runs at
// t >= T_s can therefore only produce effects on d at >= t + L[s][d]
// >= bound_d — strictly beyond d's window (postRemote asserts the bound
// on every message). Every entry must be >= the scalar lookahead, which
// stays the certified global floor; when no matrix is installed the
// executor uses that scalar for every pair, which is the pre-matrix
// behavior with per-shard (instead of global) bounds.
//
// Worker threads are a pure performance knob: S shards split
// contiguously over W = min(shards, workers) workers, and results depend
// only on (program, partition, lookahead matrix) — never on W, affinity
// or thread scheduling. shards == 1 bypasses all of this: run() forwards
// to the single context's classic serial loop, bit-identical to the
// pre-PDES core.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"
#include "sim/mailbox.hpp"
#include "sim/shard_context.hpp"
#include "sim/window_barrier.hpp"

namespace comb::sim {

/// CPU pinning for the executor's spawned worker threads (the calling
/// thread, which acts as worker 0, is never pinned — it may belong to a
/// sweep-level pool whose affinity is not the executor's to change).
enum class AffinityPolicy {
  None,     ///< leave placement to the OS scheduler (default)
  Compact,  ///< worker w -> cpu w mod ncpu: adjacent shards share caches
  Scatter,  ///< spread workers across the cpu range: one shard per
            ///< core/cache-domain when the host has room
};

const char* affinityPolicyName(AffinityPolicy p);
/// Parse "none" | "compact" | "scatter"; throws comb::ConfigError.
AffinityPolicy parseAffinityPolicy(std::string_view s);

struct ExecutorOptions {
  /// Number of shard contexts. Part of the determinism contract: a run's
  /// results are a function of the shard count and partition, so this is
  /// never silently reduced (unlike `workers`).
  int shards = 1;
  /// Conservative scalar lookahead in seconds — the certified global
  /// lower bound on every cross-shard interaction latency, and the floor
  /// every lookahead-matrix entry must respect. Required > 0 when
  /// shards > 1.
  Time lookahead = 0.0;
  /// Worker threads driving the shards. 0 = min(shards, hardware
  /// concurrency). Clamped to [1, shards]; affects wall time only.
  int workers = 0;
  /// Pinning policy for the spawned workers; wall time only.
  AffinityPolicy affinity = AffinityPolicy::None;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions opts = {});
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int shardCount() const { return static_cast<int>(shards_.size()); }
  bool parallel() const { return shards_.size() > 1; }
  Time lookahead() const { return opts_.lookahead; }
  int workers() const { return workers_; }
  AffinityPolicy affinity() const { return opts_.affinity; }

  ShardContext& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const ShardContext& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// Install the per-shard-pair direct channel lookahead matrix
  /// (row-major shards x shards; entry [s][d] = a lower bound on the
  /// virtual-time cost of any direct s -> d interaction; +inf when the
  /// pair has no direct channel; the diagonal is ignored). The executor
  /// takes the min-plus closure, so callers supply only the direct
  /// edges. Every finite entry must be >= the scalar lookahead (the
  /// certified floor — widening is the only legal direction). Call
  /// before run(); no-op for a single shard.
  void setLookaheadMatrix(std::vector<Time> direct);
  /// The closed matrix in effect (row-major shards x shards; the
  /// diagonal holds each shard's min feedback cycle through any other
  /// shard, +inf when none exists).
  const std::vector<Time>& lookaheadMatrix() const { return matrix_; }
  /// True once setLookaheadMatrix installed per-pair bounds ("matrix"
  /// provenance); false while every pair uses the scalar ("global-min").
  bool lookaheadFromMatrix() const { return matrixSet_; }
  /// The smallest cross-shard bound actually in effect: min finite
  /// off-diagonal entry of the closed matrix (= the scalar when no
  /// matrix is installed or nothing is connected).
  Time effectiveLookahead() const;

  /// Advance the whole simulation until every shard's queue drains or
  /// `until` is reached (events at exactly `until` still run, as in the
  /// serial core). Returns the final virtual time — the max over shards.
  /// Rethrows the first failure (lowest shard index) of any simulated
  /// process.
  Time run(Time until = std::numeric_limits<Time>::infinity());

  /// Virtual time reached so far (max over shards).
  Time now() const;
  /// Sum over shards.
  std::size_t liveProcesses() const;
  std::uint64_t eventsExecuted() const;
  /// Number of conservative windows executed by run() so far (0 for the
  /// single-shard fast path) — observability for tests and benches.
  std::uint64_t windowsExecuted() const { return windows_; }

  /// Load imbalance across shards: max per-shard events / mean per-shard
  /// events (1.0 = perfectly balanced; 1.0 for the serial core). A pure
  /// function of the deterministic per-shard event counts, so archives
  /// can stamp it into provenance. Meaningful after run().
  double shardImbalance() const;

  /// Merged view of every shard's metrics registry (see
  /// metrics::mergeSnapshots). Single-shard: the plain snapshot.
  metrics::Snapshot metricsSnapshot() const;

 private:
  static int computeWorkers(const ExecutorOptions& opts);

  /// Contiguous shard range [shardLo(w), shardHi(w)) owned by worker w.
  int shardLo(int w) const { return w * shardCount() / workers_; }
  int shardHi(int w) const { return (w + 1) * shardCount() / workers_; }

  /// Park-until-run loop of a spawned worker thread (w >= 1).
  void workerLoop(int w);
  /// One run()'s window loop, executed by every worker for its shards.
  void driveShards(int w);
  /// Barrier completion: compute per-shard LBTS bounds for the next
  /// window, or set done_. Runs on exactly one thread per window.
  void planWindow();
  /// Fold shard d's inbound mailbox rings into its queue, sorted by the
  /// (time, seq, src) key.
  void drainShard(int d);

  MailboxRing& ring(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * shards_.size() +
                 static_cast<std::size_t>(dst)];
  }

  ExecutorOptions opts_;
  int workers_ = 1;
  std::vector<std::unique_ptr<ShardContext>> shards_;

  /// Closed lookahead matrix, row-major S x S (diagonal 0). Filled with
  /// the scalar at construction; replaced by setLookaheadMatrix.
  std::vector<Time> matrix_;
  bool matrixSet_ = false;

  // --- window-loop state (multi-shard only) -------------------------------
  // Plain memory: every cross-thread access is separated by an
  // EpochBarrier crossing (see the phase walkthrough above).
  /// T_d per shard, published in the fold-in phase by the owning worker.
  std::vector<Time> nextTimes_;
  /// Window bound per shard, written by planWindow; ShardContext keeps a
  /// pointer into this array for the postRemote assert.
  std::vector<Time> bounds_;
  /// One mailbox ring per ordered shard pair, indexed src * S + dst.
  std::vector<MailboxRing> mail_;
  /// Per-shard fold-in scratch (gather + sort); capacity is retained, so
  /// the steady state allocates nothing.
  std::vector<std::vector<RemoteEvent>> scratch_;
  // --- self-observability (multi-shard only) ------------------------------
  /// "exec.shard<k>.window_events": events the shard ran per window
  /// (deterministic — a pure function of the program and partition).
  /// Lives in shard k's registry; recorded by the owning worker only.
  std::vector<Histogram*> windowEvents_;
  /// "exec.w<w>.barrier_wait": wall-clock seconds worker w spent inside
  /// each barrier crossing (wall time only — excluded from determinism
  /// claims). Lives in the registry of the worker's first shard.
  std::vector<LatencyRecorder*> barrierWait_;

  Time cap_ = std::numeric_limits<Time>::infinity();
  bool done_ = false;
  /// Progress-failure (vanishing lookahead) raised by planWindow; rethrown
  /// on the calling thread after the loop stops.
  std::exception_ptr windowError_;
  std::uint64_t windows_ = 0;

  // --- persistent worker team ---------------------------------------------
  EpochBarrier barrier_;
  /// Spawned workers (workers_ - 1 threads; the caller is worker 0). They
  /// park on runGen_ between run() calls and exit when shutdown_ is set.
  std::vector<std::thread> team_;
  std::atomic<std::uint64_t> runGen_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace comb::sim
