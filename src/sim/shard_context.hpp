// ShardContext: the per-shard scheduling surface of the discrete-event
// core — what events, NICs, host models, transports and MiniMPI talk to.
//
// A ShardContext owns a virtual clock, an event queue, the processes
// spawned onto it, a metrics registry and (optionally) a trace log.
// Simulated processes are coroutines (sim::Task<void>); they advance
// virtual time by awaiting delays or synchronization objects (Trigger,
// Channel, the host CPU model, ...). Execution *within one shard* is
// single-threaded and bit-reproducible: same program, same seed, same
// event order.
//
// Two ways to drive a context:
//   * standalone — run()/step(), the classic serial simulator. The alias
//     `sim::Simulator` (sim/simulator.hpp) names exactly this use; every
//     unit test and micro-benchmark drives a single context this way,
//     and a single-shard sim::Executor takes the identical code path, so
//     `--sim-jobs 1` is bit-identical to the pre-PDES serial core.
//   * sharded — owned by a sim::Executor (sim/executor.hpp), which
//     partitions the machine's nodes over several contexts and advances
//     them in conservative-lookahead time windows. Events that must run
//     on another shard (cross-shard packet deliveries) are posted as
//     timestamped channel messages via postRemote(); the lookahead bound
//     guarantees every such message lands beyond the current window, so
//     no shard ever receives an event in its past.
//
// Determinism contract (see docs/parallel_sim.md): within a shard, event
// order is (time, local seq) exactly as in the serial core. Remote
// messages are folded in at window boundaries sorted by their packed
// (time, seq, src) key, so a parallel run is a pure function of
// (program, partition, lookahead) — independent of thread scheduling or
// worker count.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"
#include "sim/tracelog.hpp"

namespace comb::sim {

class Executor;

class ShardContext {
 public:
  /// A standalone (single-shard, serial) context. Executor-owned shards
  /// are created through Executor and carry their shard id.
  ShardContext() = default;
  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;
  ~ShardContext();

  /// Current virtual time of this shard, in seconds.
  Time now() const { return now_; }

  /// Shard index within the owning Executor (0 for a standalone context).
  int shard() const { return shardId_; }
  /// The owning Executor; nullptr for a standalone context.
  Executor* executor() const { return executor_; }
  /// True when this context belongs to a multi-shard Executor — i.e.
  /// cross-shard posts are possible and remote components must not be
  /// touched directly.
  bool sharded() const { return sharded_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0). Takes
  /// any callable an event closure can hold (see sim/inplace_fn.hpp) and
  /// forwards it straight into the event pool — no intermediate EventFn.
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  EventHandle schedule(Time delay, F&& fn) {
    COMB_ASSERT(delay >= 0.0, "negative event delay");
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }
  /// Schedule `fn` at absolute virtual time `when` (>= now()).
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  EventHandle scheduleAt(Time when, F&& fn) {
    COMB_ASSERT(when >= now_, "scheduling into the past");
    return queue_.push(when, std::forward<F>(fn));
  }

  /// Post an event onto another shard at absolute time `when`. The
  /// message is appended to the (this, dst) mailbox ring — a plain
  /// store, no lock — and folded into `dst`'s queue at the next window
  /// boundary, ordered by its packed (time, seq, src) key. `when` must
  /// respect the conservative lookahead: it may not fall inside the
  /// window `dst` is currently executing (asserted against the
  /// executor-published per-shard bound — a violation means a
  /// cross-shard interaction faster than the certified lookahead matrix
  /// entry, i.e. a partitioning bug). Posting to self (or from a
  /// standalone context) degenerates to scheduleAt.
  template <typename F>
    requires std::is_constructible_v<EventFn, F&&>
  void postRemote(ShardContext& dst, Time when, F&& fn) {
    if (&dst == this || !sharded_) {
      dst.scheduleAt(when, std::forward<F>(fn));
      return;
    }
    COMB_ASSERT(when >= shardBounds_[static_cast<std::size_t>(dst.shardId_)],
                "cross-shard post violates the lookahead bound");
    outRings_[static_cast<std::size_t>(dst.shardId_)].push(
        when, nextRemoteSeq_++, static_cast<std::uint32_t>(shardId_),
        std::forward<F>(fn));
  }

  /// Launch a simulated process. The coroutine starts at the current
  /// virtual time (before run() it starts at t = 0 when run() begins).
  /// The context owns the coroutine; exceptions it throws abort the
  /// simulation and are rethrown from run()/step() (or from
  /// Executor::run for executor-owned shards).
  void spawn(Task<void> process, std::string name = {});

  /// Drive this context standalone: run until the event queue drains or
  /// `until` is reached (events at exactly `until` still run). Returns
  /// the final virtual time. Executor-owned shards are driven by the
  /// Executor instead.
  Time run(Time until = std::numeric_limits<Time>::infinity());

  /// Execute a single event; returns false when none are pending.
  bool step();

  /// Number of processes spawned on this shard that have not finished.
  std::size_t liveProcesses() const { return liveProcesses_; }
  std::uint64_t eventsExecuted() const { return eventsExecuted_; }
  std::uint64_t eventsScheduled() const { return queue_.scheduledCount(); }

  /// Optional hook invoked before each event executes — used by the trace
  /// tests to record exact event ordering.
  using TraceFn = std::function<void(Time, std::uint64_t /*eventIndex*/)>;
  void setTrace(TraceFn fn) { trace_ = std::move(fn); }

  /// Attach a structured trace log (see sim/tracelog.hpp). Instrumented
  /// components emit through emitTrace*(); pass nullptr to detach. Detached,
  /// every emitter below is a single pointer test. Under an Executor each
  /// shard carries its own log; sim::mergeTraceLogs folds them into one
  /// timeline after the run.
  void attachTraceLog(TraceLog* log) { traceLog_ = log; }
  TraceLog* traceLog() const { return traceLog_; }
  bool tracing() const { return traceLog_ != nullptr; }
  void emitTrace(TraceCategory cat, int node, std::string_view label,
                 double a = 0, double b = 0) {
    if (traceLog_) traceLog_->emit(now_, cat, node, label, a, b);
  }
  void emitTraceBegin(TraceCategory cat, int node, std::string_view label,
                      double a = 0) {
    if (traceLog_) traceLog_->beginSpan(now_, cat, node, label, a);
  }
  void emitTraceEnd(TraceCategory cat, int node, std::string_view label,
                    double a = 0) {
    if (traceLog_) traceLog_->endSpan(now_, cat, node, label, a);
  }
  /// Span with a known duration, stamped [now, now + dur).
  void emitTraceComplete(Time dur, TraceCategory cat, int node,
                         std::string_view label, double a = 0, double b = 0) {
    if (traceLog_) traceLog_->complete(now_, dur, cat, node, label, a, b);
  }
  /// Like emitTraceComplete but with an explicit start time (for emitters
  /// that compute a window, e.g. an ISR that starts after the current
  /// busy period).
  void emitTraceCompleteAt(Time start, Time dur, TraceCategory cat, int node,
                           std::string_view label, double a = 0,
                           double b = 0) {
    if (traceLog_) traceLog_->complete(start, dur, cat, node, label, a, b);
  }

  /// Metrics registry for this shard: components register named counters
  /// and histograms at construction and snapshot after a run. Always
  /// present (unlike the trace log) so increments never need a null
  /// check. Under an Executor, per-shard snapshots are merged by name
  /// (see metrics::mergeSnapshots) — a single-shard run snapshots the
  /// one registry exactly as the serial core always has.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Awaitable: suspend the calling coroutine for `d` simulated seconds.
  /// A zero delay still round-trips through the event queue, which
  /// deterministically yields to other ready processes.
  auto delay(Time d);
  /// Awaitable: yield once (equivalent to delay(0)).
  auto yield();

 private:
  friend class Executor;

  struct Detached;
  Detached runProcess(Task<void> t, std::string name);
  void recordFailure(std::exception_ptr e, const std::string& name);
  void rethrowIfFailed();

  // --- Executor-side driving (see sim/executor.cpp) -----------------------
  /// Earliest pending local event time, or +inf when the queue is empty.
  Time nextPendingTime() {
    return queue_.empty() ? std::numeric_limits<Time>::infinity()
                          : queue_.nextTime();
  }
  /// Execute every local event with time < `bound` (one conservative
  /// window). Failures are recorded, not thrown — the Executor collects
  /// them deterministically across shards. Mailbox fold-in lives on the
  /// Executor (drainShard), which owns the rings.
  void runWindow(Time bound);

  Time now_ = 0.0;
  EventQueue queue_;
  std::uint64_t eventsExecuted_ = 0;
  std::size_t liveProcesses_ = 0;
  std::exception_ptr failure_;
  std::string failedProcess_;
  TraceFn trace_;
  TraceLog* traceLog_ = nullptr;
  metrics::Registry metrics_;

  // --- sharding state (inert for standalone contexts) ---------------------
  Executor* executor_ = nullptr;
  int shardId_ = 0;
  bool sharded_ = false;
  std::uint64_t nextRemoteSeq_ = 0;
  /// Row of the Executor's mailbox array for this source shard:
  /// outRings_[d] is the (this, d) ring. Set once at Executor
  /// construction; null for standalone contexts.
  MailboxRing* outRings_ = nullptr;
  /// The Executor's per-shard window bounds (bounds_.data()), for the
  /// postRemote lookahead assert. Written by the window planner under
  /// the barrier, read-only during the run phase.
  const Time* shardBounds_ = nullptr;
};

/// RAII span: begins on construction, ends (same label, same track) on
/// destruction at the then-current virtual time. Safe when no log is
/// attached. The label must outlive the scope (string literals do).
class TraceScope {
 public:
  TraceScope(ShardContext& sim, TraceCategory cat, int node,
             std::string_view label, double a = 0)
      : sim_(sim), cat_(cat), node_(node), label_(label) {
    sim_.emitTraceBegin(cat_, node_, label_, a);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { sim_.emitTraceEnd(cat_, node_, label_); }

 private:
  ShardContext& sim_;
  TraceCategory cat_;
  int node_;
  std::string_view label_;
};

namespace detail {

struct DelayAwaiter {
  ShardContext& sim;
  Time d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim.schedule(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

inline auto ShardContext::delay(Time d) {
  return detail::DelayAwaiter{*this, d};
}
inline auto ShardContext::yield() { return delay(0); }

}  // namespace comb::sim
