// Channel<T>: an unbounded FIFO mailbox between simulated processes.
//
// send() never blocks; recv() is awaitable and completes (through the
// event queue, for determinism) as soon as a value is available. Multiple
// concurrent receivers are served FIFO.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace comb::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    values_.push_back(std::move(value));
    pump();
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Non-blocking receive.
  std::optional<T> tryRecv() {
    // Values already promised to suspended receivers are not stealable.
    if (values_.size() <= inFlight_) return std::nullopt;
    T v = std::move(values_.front());
    values_.pop_front();
    return v;
  }

  struct Awaiter {
    Channel& ch;

    bool await_ready() {
      // Fast path: a value is free (not reserved by an earlier waiter).
      return ch.waiters_.empty() && ch.values_.size() > ch.inFlight_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back(h);
      ch.pump();
    }
    T await_resume() {
      COMB_ASSERT(!ch.values_.empty(), "Channel resumed without a value");
      T v = std::move(ch.values_.front());
      ch.values_.pop_front();
      if (ch.inFlight_ > 0) --ch.inFlight_;  // consumed a reserved value
      return v;
    }
  };

  /// Awaitable receive.
  Awaiter recv() { return Awaiter{*this}; }

 private:
  // Match queued values to suspended receivers; each match reserves one
  // value (inFlight_) and schedules the receiver's resumption.
  void pump() {
    while (!waiters_.empty() && values_.size() > inFlight_) {
      auto h = waiters_.front();
      waiters_.pop_front();
      ++inFlight_;
      sim_->schedule(0.0, [h] { h.resume(); });
    }
  }

  Simulator* sim_;
  std::deque<T> values_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t inFlight_ = 0;
};

}  // namespace comb::sim
