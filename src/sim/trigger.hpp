// Awaitable synchronization primitives for simulated processes.
//
// Trigger      — a one-shot latch: waiters suspend until fire(); waiting on
//                an already-fired trigger completes immediately. reset()
//                re-arms it.
// CountLatch   — completes waiters once `n` arrivals were counted.
//
// Resumptions are routed through the event queue at the current virtual
// time (never inline) so that wake-ups interleave deterministically with
// other same-timestamp events.
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace comb::sim {

class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(&sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }

  /// Latch and wake all current waiters (at the current virtual time).
  /// Idempotent while latched.
  void fire() {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_->schedule(0.0, [h] { h.resume(); });
    }
  }

  /// Re-arm. Only valid when no one is waiting.
  void reset() {
    COMB_ASSERT(waiters_.empty(), "Trigger::reset with pending waiters");
    fired_ = false;
  }

  struct Awaiter {
    Trigger& t;
    bool await_ready() const noexcept { return t.fired_; }
    void await_suspend(std::coroutine_handle<> h) { t.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable: suspend until fired.
  Awaiter wait() { return Awaiter{*this}; }

  std::size_t waiterCount() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Completes waiters after arrive() was called `expected` times.
class CountLatch {
 public:
  CountLatch(Simulator& sim, std::size_t expected)
      : trigger_(sim), remaining_(expected) {
    if (remaining_ == 0) trigger_.fire();
  }

  void arrive() {
    COMB_ASSERT(remaining_ > 0, "CountLatch::arrive past zero");
    if (--remaining_ == 0) trigger_.fire();
  }

  std::size_t remaining() const { return remaining_; }
  auto wait() { return trigger_.wait(); }

 private:
  Trigger trigger_;
  std::size_t remaining_;
};

}  // namespace comb::sim
