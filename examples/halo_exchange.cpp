// Halo exchange: what MPI/computation overlap buys a real application.
//
// A 2D Jacobi heat-diffusion solver is row-decomposed across 4 simulated
// nodes. Each iteration exchanges one halo row (32 KB) with each
// neighbour and relaxes the grid. Three communication schedules:
//
//   blocking     — wait for the halos, then compute everything;
//   overlapped   — post irecv/isend, compute the interior (which needs no
//                  halos), wait, then compute the boundary rows;
//   overlap+poke — overlapped, plus a few MPI_Test-style progress calls
//                  sprinkled through the interior compute (§4.3's fix).
//
// Run on both machine models, the example reproduces the paper's thesis
// at application level:
//   * GM: naive overlap buys nothing — rendezvous halos sit in RTS/CTS
//     limbo during call-free compute (no application offload); the poke
//     schedule recovers the overlap.
//   * Portals: messages progress on their own, but interrupts and kernel
//     copies consume the same CPU the compute needs, so overlap can only
//     hide the wire time, not the host overhead.
//
//   $ ./halo_exchange [--iters N]
#include <cmath>
#include <cstdio>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

using namespace comb;
using namespace comb::units;
using sim::Task;

namespace {

constexpr int kRanks = 4;
constexpr int kRowsPerRank = 16;
constexpr int kCols = 4096;            // halo row = 32 KB (> GM eager cutoff)
constexpr int kItersPerCell = 4;       // calibrated-work-loop iters per cell
constexpr mpi::Tag kTagUp = 1;         // to rank-1 (my top row travels up)
constexpr mpi::Tag kTagDown = 2;       // to rank+1

struct RankResult {
  double checksum = 0.0;
  Time elapsed = 0.0;
};

class Patch {
 public:
  Patch(int rank) {
    // Local rows 1..kRowsPerRank; rows 0 and kRowsPerRank+1 are halos.
    cells_.assign(static_cast<size_t>(kRowsPerRank + 2) * kCols, 0.0);
    // Heat source: the global top edge is held at 100.
    if (rank == 0)
      for (int c = 0; c < kCols; ++c) at(0, c) = 100.0;
  }

  double& at(int r, int c) { return cells_[static_cast<size_t>(r) * kCols + c]; }
  double at(int r, int c) const {
    return cells_[static_cast<size_t>(r) * kCols + c];
  }
  std::span<std::byte> rowBytes(int r) {
    return std::as_writable_bytes(
        std::span<double>(&at(r, 0), static_cast<size_t>(kCols)));
  }
  std::span<const std::byte> rowBytesConst(int r) const {
    return std::as_bytes(std::span<const double>(
        &cells_[static_cast<size_t>(r) * kCols], static_cast<size_t>(kCols)));
  }

  /// Jacobi relaxation of rows [rLo, rHi] from `prev` into *this.
  void relaxRows(const Patch& prev, int rLo, int rHi) {
    for (int r = rLo; r <= rHi; ++r)
      for (int c = 1; c < kCols - 1; ++c)
        at(r, c) = 0.25 * (prev.at(r - 1, c) + prev.at(r + 1, c) +
                           prev.at(r, c - 1) + prev.at(r, c + 1));
  }

  double checksum() const {
    double s = 0;
    for (int r = 1; r <= kRowsPerRank; ++r)
      for (int c = 0; c < kCols; ++c) s += at(r, c);
    return s;
  }

 private:
  std::vector<double> cells_;
};

enum class Schedule { Blocking, Overlapped, OverlappedPoked };

const char* scheduleName(Schedule s) {
  switch (s) {
    case Schedule::Blocking: return "blocking";
    case Schedule::Overlapped: return "overlapped";
    case Schedule::OverlappedPoked: return "overlap+poke";
  }
  return "?";
}

Task<void> solveRank(backend::SimProc& p, int iters, Schedule schedule,
                     RankResult& out) {
  auto& mpi = p.mpi();
  const auto& world = mpi.world();
  const int up = p.rank() - 1;               // neighbour owning rows above
  const int down = p.rank() + 1;
  Patch grid(p.rank()), next(p.rank());

  co_await mpi.barrier(world);
  const Time t0 = p.wtime();
  for (int it = 0; it < iters; ++it) {
    std::vector<mpi::Request> reqs;
    // Post halo receives and sends (non-blocking in both schedules).
    if (up >= 0) {
      reqs.push_back(co_await mpi.irecv(world, up, kTagDown,
                                        kCols * sizeof(double),
                                        grid.rowBytes(0)));
      reqs.push_back(co_await mpi.isend(world, up, kTagUp,
                                        kCols * sizeof(double),
                                        grid.rowBytesConst(1)));
    }
    if (down < kRanks) {
      reqs.push_back(co_await mpi.irecv(world, down, kTagUp,
                                        kCols * sizeof(double),
                                        grid.rowBytes(kRowsPerRank + 1)));
      reqs.push_back(co_await mpi.isend(world, down, kTagDown,
                                        kCols * sizeof(double),
                                        grid.rowBytesConst(kRowsPerRank)));
    }
    if (schedule != Schedule::Blocking) {
      // Interior rows 2..kRowsPerRank-1 need no halos: compute them while
      // (maybe) the halos fly. The poked schedule splits the interior
      // into chunks with a progress call between them — the cheap
      // application-level workaround for library-driven stacks.
      const std::uint64_t interiorWork =
          static_cast<std::uint64_t>(kRowsPerRank - 2) * kCols *
          kItersPerCell;
      if (schedule == Schedule::OverlappedPoked) {
        constexpr int kChunks = 4;
        for (int chunk = 0; chunk < kChunks; ++chunk) {
          co_await p.work(interiorWork / kChunks);
          co_await mpi.progressOnce();
        }
      } else {
        co_await p.work(interiorWork);
      }
      next.relaxRows(grid, 2, kRowsPerRank - 1);
      co_await mpi.waitall(reqs);
      co_await p.work(2ull * kCols * kItersPerCell);
      next.relaxRows(grid, 1, 1);
      next.relaxRows(grid, kRowsPerRank, kRowsPerRank);
    } else {
      co_await mpi.waitall(reqs);
      co_await p.work(static_cast<std::uint64_t>(kRowsPerRank) * kCols *
                      kItersPerCell);
      next.relaxRows(grid, 1, kRowsPerRank);
    }
    // Keep the boundary condition pinned and swap buffers.
    std::swap(grid, next);
    if (p.rank() == 0)
      for (int c = 0; c < kCols; ++c) grid.at(0, c) = 100.0;
  }
  out.elapsed = p.wtime() - t0;

  // Global checksum via the collectives layer.
  const double mine = grid.checksum();
  std::vector<double> sum(1);
  co_await mpi.allreduceSum(world, std::span<const double>(&mine, 1), sum);
  out.checksum = sum[0];
}

struct RunOutcome {
  double checksum = 0.0;
  Time elapsed = 0.0;
};

RunOutcome runSchedule(const backend::MachineConfig& machine, int iters,
                       Schedule schedule) {
  backend::SimCluster cluster(machine, kRanks);
  std::vector<RankResult> results(kRanks);
  for (int r = 0; r < kRanks; ++r)
    cluster.launch(r, solveRank(cluster.proc(r), iters, schedule,
                                results[static_cast<size_t>(r)]));
  cluster.run();
  RunOutcome out;
  out.checksum = results[0].checksum;
  for (const auto& r : results) out.elapsed = std::max(out.elapsed, r.elapsed);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("halo_exchange", "2D Jacobi halo exchange over MiniMPI");
  args.addOption("iters", "Jacobi iterations", "30");
  if (!args.parse(argc, argv)) return 0;
  const int iters = static_cast<int>(args.integer("iters"));

  std::printf("2D Jacobi, %d ranks x %d rows x %d cols, %d iterations, "
              "32 KB halos\n\n",
              kRanks, kRowsPerRank, kCols, iters);

  double referenceChecksum = 0.0;
  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    std::printf("%s:\n", machine.name.c_str());
    double blockingTime = 0.0;
    for (const Schedule s : {Schedule::Blocking, Schedule::Overlapped,
                             Schedule::OverlappedPoked}) {
      const auto run = runSchedule(machine, iters, s);
      if (s == Schedule::Blocking) blockingTime = run.elapsed;
      std::printf("  %-12s %10s  (%.2fx vs blocking)\n", scheduleName(s),
                  fmtTime(run.elapsed).c_str(), blockingTime / run.elapsed);
      if (referenceChecksum == 0.0) referenceChecksum = run.checksum;
      // Same physics everywhere: schedules and machines must agree.
      if (std::fabs(run.checksum - referenceChecksum) >
          1e-9 * std::fabs(referenceChecksum)) {
        std::fprintf(stderr, "checksum mismatch: %.12g vs %.12g\n",
                     run.checksum, referenceChecksum);
        return 1;
      }
    }
  }
  std::printf("\nall schedules/machines agree on the solution "
              "(checksum %.6g)\n",
              referenceChecksum);
  std::printf(
      "\nreading: on GM, naive overlap gains nothing (no application\n"
      "offload) until progress calls are sprinkled into the compute; on\n"
      "Portals the transfer progresses by itself but eats the same CPU the\n"
      "compute needs, so there is little left to hide.\n");
  return 0;
}
