// Quickstart: measure MPI/computation overlap on a simulated GM machine.
//
//   $ ./quickstart
//
// Runs one polling-method point and one PWW point on the bundled GM
// (OS-bypass Myrinet) machine model and prints what COMB tells you about
// the system.
#include <cstdio>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/string_util.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;

int main() {
  const auto machine = backend::gmMachine();

  // Polling method: 100 KB messages, poll every 50k work-loop iterations.
  auto polling = bench::presets::pollingBase(100_KB);
  polling.pollInterval = 50'000;
  const auto poll = bench::runPollingPoint(machine, polling);

  // PWW method: same size, 1M iterations (~4 ms) of call-free work.
  auto pww = bench::presets::pwwBase(100_KB);
  pww.workInterval = 1'000'000;
  const auto cycle = bench::runPwwPoint(machine, pww);

  std::printf("COMB quickstart on machine '%s'\n\n", machine.name.c_str());
  std::printf("polling method (poll every %llu iters):\n",
              static_cast<unsigned long long>(poll.pollInterval));
  std::printf("  bandwidth        %7.2f MB/s\n", toMBps(poll.bandwidthBps));
  std::printf("  CPU availability %7.3f\n", poll.availability);
  std::printf("  messages moved   %7llu\n\n",
              static_cast<unsigned long long>(poll.messagesReceived));

  std::printf("post-work-wait method (work %llu iters = %s):\n",
              static_cast<unsigned long long>(cycle.workInterval),
              fmtTime(cycle.dryWork).c_str());
  std::printf("  post  %9s per op\n", fmtTime(cycle.avgPostPerOp).c_str());
  std::printf("  work  %9s (dry: %s)\n", fmtTime(cycle.avgWork).c_str(),
              fmtTime(cycle.dryWork).c_str());
  std::printf("  wait  %9s per message\n",
              fmtTime(cycle.avgWaitPerMsg).c_str());
  std::printf("  bandwidth %6.2f MB/s, availability %.3f\n\n",
              toMBps(cycle.bandwidthBps), cycle.availability);

  const bool offload = cycle.avgWaitPerMsg < 0.1 * cycle.dryWork;
  std::printf("verdict: with a work phase ~%s long, the wait phase is %s —\n"
              "this system %s application offload.\n",
              fmtTime(cycle.dryWork).c_str(),
              fmtTime(cycle.avgWaitPerMsg).c_str(),
              offload ? "exhibits" : "does NOT exhibit");
  return 0;
}
