// Design-space exploration: what would it take for a kernel-based stack
// to match OS-bypass?
//
// COMB as a design tool: sweep the two dominant cost knobs of the
// Portals-style stack — per-fragment interrupt cost and kernel copy
// bandwidth — and print the (bandwidth, availability-at-full-rate) grid
// next to the GM reference. The paper's §4 explains the two systems; this
// example interpolates the space between them.
//
//   $ ./design_space
#include <cstdio>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;

namespace {

struct CellResult {
  double bandwidthMBps = 0;
  double availability = 0;
};

CellResult evaluate(double isrUs, double copyMBps) {
  auto machine = backend::portalsMachine();
  machine.portals.nic.perFragRx = isrUs * 1e-6;
  machine.portals.nic.perFragTx = isrUs * 0.45e-6;  // tx ~45% of rx cost
  machine.portals.nic.kernelCopyRate = copyMBps * 1e6;
  auto params = bench::presets::pollingBase(100_KB);
  params.pollInterval = 20'000;  // the plateau operating point
  const auto pt = bench::runPollingPoint(machine, params);
  return CellResult{toMBps(pt.bandwidthBps), pt.availability};
}

}  // namespace

int main() {
  const std::vector<double> isrCosts{20.0, 10.0, 5.0, 2.0};   // us/fragment
  const std::vector<double> copyRates{280, 560, 1120};        // MB/s

  std::printf("Portals-style design space, 100 KB messages, plateau "
              "operating point.\nCell: bandwidth MB/s (availability)\n\n");
  TextTable table([&] {
    std::vector<std::string> hdr{"isr_us \\ copy_MBps"};
    for (const double c : copyRates) hdr.push_back(strFormat("%.0f", c));
    return hdr;
  }());
  for (const double isr : isrCosts) {
    std::vector<std::string> row{strFormat("%.0f", isr)};
    for (const double copy : copyRates) {
      const auto cell = evaluate(isr, copy);
      row.push_back(strFormat("%.1f (%.2f)", cell.bandwidthMBps,
                              cell.availability));
    }
    table.addRow(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);

  // GM reference point.
  auto gmParams = bench::presets::pollingBase(100_KB);
  gmParams.pollInterval = 20'000;
  const auto gm = bench::runPollingPoint(backend::gmMachine(), gmParams);
  std::printf("\nGM (OS-bypass) reference: %.1f MB/s (%.2f)\n",
              toMBps(gm.bandwidthBps), gm.availability);
  std::printf(
      "\nreading: the paper's Portals sits at the top-left corner; cheap\n"
      "interrupts buy bandwidth, but availability at full rate only\n"
      "approaches GM once the per-byte host cost (copies) also falls —\n"
      "or the kernel work moves to another CPU entirely (see\n"
      "bench/ext_smp_steering).\n");
  return 0;
}
