// Assessing a hypothetical machine: build your own MachineConfig.
//
// The scenario: you are evaluating a next-generation kernel-based NIC
// that keeps the Portals programming model (application offload) but adds
// interrupt coalescing (cheap per-fragment interrupts) and a faster copy
// engine. How close does it get to OS-bypass GM? COMB answers without
// hardware.
//
//   $ ./custom_machine
#include <cstdio>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;

namespace {

backend::MachineConfig hypotheticalNic() {
  auto machine = backend::portalsMachine();
  machine.name = "portals-ng";
  // Interrupt coalescing: one interrupt per 4 fragments, amortized.
  machine.portals.nic.perFragRx = 5e-6;
  machine.portals.nic.perFragTx = 3e-6;
  // A DMA-assisted copy engine.
  machine.portals.nic.kernelCopyRate = 900e6;
  machine.portals.unexpectedCopyRate = 900e6;
  // Leaner post path (doorbell instead of full syscall descriptor work).
  machine.portals.postSyscall = 5e-6;
  machine.portals.postKernel = 20e-6;
  return machine;
}

struct Row {
  std::string name;
  double peakBw = 0;
  double availAtFullRate = 0;
  double pwwWaitUs = 0;
  bool offload = false;
};

Row assess(const backend::MachineConfig& machine) {
  Row row;
  row.name = machine.name;

  auto polling = bench::presets::pollingBase(100_KB);
  polling.pollInterval = 20'000;
  const auto poll = bench::runPollingPoint(machine, polling);
  row.peakBw = toMBps(poll.bandwidthBps);
  row.availAtFullRate = poll.availability;

  auto pww = bench::presets::pwwBase(100_KB);
  pww.workInterval = 5'000'000;
  const auto cycle = bench::runPwwPoint(machine, pww);
  row.pwwWaitUs = cycle.avgWaitPerMsg * 1e6;
  row.offload = cycle.avgWaitPerMsg < 0.05 * cycle.dryWork;
  return row;
}

}  // namespace

int main() {
  TextTable table({"machine", "plateau_MBps", "avail_at_rate", "pww_wait_us",
                   "app_offload"});
  for (const auto& machine : {backend::gmMachine(), backend::portalsMachine(),
                              hypotheticalNic()}) {
    const Row r = assess(machine);
    table.addRow({r.name, strFormat("%.1f", r.peakBw),
                  strFormat("%.3f", r.availAtFullRate),
                  strFormat("%.1f", r.pwwWaitUs), r.offload ? "yes" : "no"});
  }
  std::printf("COMB assessment of a hypothetical coalescing NIC against the "
              "paper's two systems:\n\n%s\n",
              table.str().c_str());
  std::printf("the hypothetical design keeps Portals' application offload "
              "(wait ~0)\nwhile recovering most of GM's bandwidth and "
              "availability — the design\npoint the paper's analysis "
              "motivates.\n");
  return 0;
}
