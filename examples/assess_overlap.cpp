// Full COMB assessment of a system, reproducing the paper's §4 analysis
// workflow end to end:
//   1. polling sweep  -> peak bandwidth, availability plateau
//   2. PWW sweep      -> application-offload verdict, phase breakdown
//   3. PWW + MPI_Test -> library-call effect (progress-rule violation)
//
//   $ ./assess_overlap --machine gm
//   $ ./assess_overlap --machine portals --size 300
#include <algorithm>
#include <cstdio>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;

int main(int argc, char** argv) {
  ArgParser args("assess_overlap", "COMB overlap assessment of one machine");
  args.addOption("machine", "gm | portals", "gm");
  args.addOption("size", "message size in KB", "100");
  if (!args.parse(argc, argv)) return 0;

  const auto machine = args.str("machine") == "portals"
                           ? backend::portalsMachine()
                           : backend::gmMachine();
  const Bytes msgBytes = static_cast<Bytes>(args.integer("size")) * 1024;

  std::printf("=== COMB assessment: machine '%s', %s messages ===\n\n",
              machine.name.c_str(), fmtBytes(msgBytes).c_str());

  // 1. Polling sweep: the unfettered view.
  const auto pollIntervals = bench::logSweep(10, 100'000'000, 2);
  const auto poll = bench::runPollingSweep(
      machine,
      bench::sweepOver(bench::presets::pollingBase(msgBytes), pollIntervals));
  double peakBw = 0, bestAvailNearPeak = 0;
  for (const auto& p : poll) peakBw = std::max(peakBw, p.bandwidthBps);
  for (const auto& p : poll)
    if (p.bandwidthBps >= 0.85 * peakBw)
      bestAvailNearPeak = std::max(bestAvailNearPeak, p.availability);

  std::printf("[polling] peak bandwidth %.2f MB/s; best availability while "
              "within 85%% of peak: %.3f\n",
              toMBps(peakBw), bestAvailNearPeak);
  std::printf("[polling] => at full message rate the host keeps %.0f%% of "
              "its cycles\n\n",
              100.0 * bestAvailNearPeak);

  // 2. PWW at a long work interval: offload + overhead verdicts.
  auto pwwParams = bench::presets::pwwBase(msgBytes);
  pwwParams.workInterval = 5'000'000;  // ~20 ms, >> exchange time
  const auto pww = bench::runPwwPoint(machine, pwwParams);

  TextTable phases({"phase", "duration", "note"});
  phases.setAlign(TextTable::Align::Left);
  phases.addRow({"post", fmtTime(pww.avgPostPerOp), "per non-blocking call"});
  phases.addRow({"work", fmtTime(pww.avgWork),
                 strFormat("dry: %s", fmtTime(pww.dryWork).c_str())});
  phases.addRow({"wait", fmtTime(pww.avgWaitPerMsg), "per message"});
  std::printf("[pww] phase breakdown at %s call-free work:\n%s\n",
              fmtTime(pww.dryWork).c_str(), phases.str().c_str());

  const bool offload = pww.avgWaitPerMsg < 0.05 * pww.dryWork;
  const double workInflation = pww.avgWork / pww.dryWork - 1.0;
  std::printf("[pww] application offload: %s (wait %s after %s of work)\n",
              offload ? "YES" : "NO", fmtTime(pww.avgWaitPerMsg).c_str(),
              fmtTime(pww.dryWork).c_str());
  std::printf("[pww] work-phase inflation: %.1f%% (%s communication "
              "overhead steals cycles)\n\n",
              100.0 * workInflation,
              workInflation > 0.02 ? "interrupt/copy" : "no");

  // 3. Library-call effect.
  auto testParams = pwwParams;
  testParams.testCallAtFraction = 0.1;
  const auto pwwTest = bench::runPwwPoint(machine, testParams);
  const double waitDrop =
      pww.avgWaitPerMsg > 0
          ? 1.0 - pwwTest.avgWaitPerMsg / pww.avgWaitPerMsg
          : 0.0;
  std::printf("[pww+test] one MPI_Test early in the work phase cuts the "
              "wait by %.0f%% (%s -> %s)\n",
              100.0 * waitDrop, fmtTime(pww.avgWaitPerMsg).c_str(),
              fmtTime(pwwTest.avgWaitPerMsg).c_str());
  if (!offload && waitDrop > 0.5) {
    std::printf("[pww+test] => progress lives in the MPI library: the MPI "
                "progress rule is effectively violated (paper §4.3)\n");
  } else if (offload) {
    std::printf("[pww+test] => no call effect, as expected for a system "
                "that progresses autonomously\n");
  }
  return 0;
}
