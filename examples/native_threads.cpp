// COMB on the native thread backend: the same benchmark templates that
// drive the simulator, executed by real OS threads against real time.
//
// The shared-memory message layer has the same progress-model switch the
// simulated transports embody: --offload (sender-side delivery, like
// Portals) vs library-driven (like GM's rendezvous). On a multicore host
// the offload mode shows PWW waits collapsing exactly as in the paper;
// on a single-core box the numbers wobble but the mechanics are live.
//
//   $ ./native_threads [--offload] [--size-kb 64] [--work 200000]
#include <cstdio>

#include "backend/thread_cluster.hpp"
#include "comb/polling.hpp"
#include "comb/pww.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;
using backend::ThreadCluster;
using backend::ThreadProc;

int main(int argc, char** argv) {
  ArgParser args("native_threads", "COMB on real threads");
  args.addFlag("offload", "sender-side (offloaded) progress model");
  args.addOption("size-kb", "message size in KB", "64");
  args.addOption("work", "PWW work interval in loop iterations", "200000");
  if (!args.parse(argc, argv)) return 0;

  const bool offload = args.flag("offload");
  const Bytes msgBytes = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  ThreadCluster cluster(2, offload);
  std::printf("native thread backend: progress model = %s, calibrated "
              "work loop = %.2f ns/iter\n\n",
              offload ? "offload (sender-delivers)" : "library-driven",
              cluster.secondsPerIter() * 1e9);

  // Polling method.
  bench::PollingParams polling;
  polling.msgBytes = msgBytes;
  polling.queueDepth = 4;
  polling.pollInterval = 5'000;
  polling.targetDuration = 50e-3;
  polling.maxPolls = 20'000;
  bench::PollingPoint pollResult;
  bench::PwwParams pww;
  pww.msgBytes = msgBytes;
  pww.workInterval = static_cast<std::uint64_t>(args.integer("work"));
  pww.reps = 9;
  bench::PwwPoint pwwResult;

  cluster.run({[&](ThreadProc& env) {
                 pollResult = bench::pollingWorker(env, polling).runSync();
               },
               [&](ThreadProc& env) {
                 bench::pollingSupport(env, polling).runSync();
               }});
  cluster.run({[&](ThreadProc& env) {
                 pwwResult = bench::pwwWorker(env, pww).runSync();
               },
               [&](ThreadProc& env) {
                 bench::pwwSupport(env, pww).runSync();
               }});

  std::printf("polling: bandwidth %.1f MB/s, availability %.3f "
              "(%llu messages)\n",
              toMBps(pollResult.bandwidthBps), pollResult.availability,
              static_cast<unsigned long long>(pollResult.messagesReceived));
  std::printf("pww:     post %s/op, work %s (dry %s), wait %s/msg\n",
              fmtTime(pwwResult.avgPostPerOp).c_str(),
              fmtTime(pwwResult.avgWork).c_str(),
              fmtTime(pwwResult.dryWork).c_str(),
              fmtTime(pwwResult.avgWaitPerMsg).c_str());
  std::printf("pww:     bandwidth %.1f MB/s, availability %.3f\n",
              toMBps(pwwResult.bandwidthBps), pwwResult.availability);
  return 0;
}
