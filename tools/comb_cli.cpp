// comb — the command-line front end of the benchmark suite.
//
//   comb polling --machine gm --size-kb 100 --interval 10000
//   comb polling --machine portals --size-kb 300 --sweep
//   comb pww     --machine gm --work 1000000 [--test-at 0.1] [--sweep]
//   comb latency --machine portals --size-kb 100
//   comb assess  --machine gm
//
// Machines are the bundled models (gm | portals), optionally modified by
// --cpus N --nic-cpu K (SMP extension) and --queue / --batch knobs.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "backend/machine.hpp"
#include "backend/machine_file.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/analysis.hpp"
#include "comb/audit.hpp"
#include "comb/polling.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "report/machine_stats.hpp"
#include "report/trace_export.hpp"

using namespace comb;
using namespace comb::units;

namespace {

void usage() {
  std::puts(
      "usage: comb <polling|pww|latency|assess|stats|trace> [options]\n"
      "  common options:\n"
      "    --machine gm|portals    machine model (default gm)\n"
      "    --machine-file F        load a machine definition (.ini)\n"
      "    --size-kb N             message size in KB (default 100)\n"
      "    --cpus N --nic-cpu K    SMP extension knobs\n"
      "    --jobs N                worker threads for sweeps (0 = all\n"
      "                            cores); results are bit-identical\n"
      "    --fault SPEC            inject link faults, e.g.\n"
      "                            drop=0.01,burst=4,seed=7 (keys: drop,\n"
      "                            burst, corrupt, jitter_us, seed)\n"
      "  polling: --interval I | --sweep    --queue Q\n"
      "  pww:     --work W | --sweep        --batch B  --test-at F\n"
      "  latency: (size only)\n"
      "  assess:  full overlap assessment (all methods)\n"
      "  stats:   run a polling workload and dump substrate statistics\n"
      "  trace:   run one fully traced point (--method polling|pww),\n"
      "           audit it, and export/summarize the timeline\n"
      "           (--out FILE Chrome JSON, --summary, --top N,\n"
      "           --stats-json)\n"
      "  try `comb <method> --help` for details");
}

ArgParser makeParser(const std::string& method) {
  ArgParser args("comb " + method, "COMB benchmark suite");
  args.addOption("machine", "gm | portals", "gm");
  args.addOption("machine-file", "load a machine definition file (.ini)", "");
  args.addOption("size-kb", "message size in KB", "100");
  args.addOption("cpus", "CPUs per node (SMP extension)", "1");
  args.addOption("nic-cpu", "CPU servicing NIC kernel work", "0");
  args.addFlag("sweep", "sweep the primary variable over the paper range");
  args.addOption("jobs",
                 "worker threads for sweep points (0 = all cores); results "
                 "are bit-identical for any value",
                 "0");
  args.addOption("interval", "polling interval (loop iterations)", "10000");
  args.addOption("work", "PWW work interval (loop iterations)", "1000000");
  args.addOption("queue", "polling queue depth", "8");
  args.addOption("batch", "PWW batch size", "1");
  args.addOption("test-at", "insert MPI_Test at this work fraction (-1=off)",
                 "-1");
  args.addOption("fault",
                 "inject link faults, e.g. drop=0.01,burst=4,seed=7 "
                 "(keys: drop, burst, corrupt, jitter_us, seed)",
                 "");
  args.addFlag("trace", "stats: also dump the substrate event trace");
  args.addOption("trace-rows", "stats: trace rows to print", "40");
  args.addOption("method", "trace: workload to trace (polling | pww)", "pww");
  args.addOption("out", "trace: write Chrome trace JSON to FILE", "");
  args.addFlag("summary",
               "trace: print per-category counts and the longest spans");
  args.addOption("top", "trace: spans to show with --summary", "10");
  args.addFlag("stats-json",
               "trace: dump the machine-stats/metrics snapshot as JSON");
  return args;
}

/// Resolve --jobs: 0 means "all hardware threads"; anything negative is a
/// configuration error reported before any simulation starts.
int jobsFrom(const ArgParser& args) {
  const auto jobs = args.integer("jobs");
  if (jobs < 0)
    throw ConfigError("--jobs must be >= 0 (0 = all cores), got " +
                      args.str("jobs"));
  return jobs == 0 ? hardwareJobs() : static_cast<int>(jobs);
}

backend::MachineConfig machineFrom(const ArgParser& args) {
  backend::MachineConfig m;
  if (const std::string file = args.str("machine-file"); !file.empty()) {
    m = backend::loadMachineFile(file);
  } else {
    const std::string name = args.str("machine");
    if (name == "gm") {
      m = backend::gmMachine();
    } else if (name == "portals") {
      m = backend::portalsMachine();
    } else {
      throw ConfigError("unknown machine '" + name + "' (gm | portals)");
    }
    m.cpusPerNode = static_cast<int>(args.integer("cpus"));
    m.nicCpu = static_cast<int>(args.integer("nic-cpu"));
  }
  // --fault overrides whatever the machine (or machine file) specified.
  if (const std::string spec = args.str("fault"); !spec.empty())
    m.fabric.link.fault = net::parseFaultSpec(spec);
  return m;
}

void printPollingRow(TextTable& t, const bench::PollingPoint& pt) {
  t.addRow({strFormat("%llu", (unsigned long long)pt.pollInterval),
            strFormat("%.2f", toMBps(pt.bandwidthBps)),
            strFormat("%.3f", pt.availability),
            strFormat("%llu", (unsigned long long)pt.messagesReceived)});
}

int runPolling(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pollingBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.queueDepth = static_cast<int>(args.integer("queue"));
  TextTable t({"poll_interval", "bandwidth_MBps", "availability", "messages"});
  if (args.flag("sweep")) {
    bench::RunOptions opts;
    opts.jobs = jobsFrom(args);
    for (const auto& pt : bench::runPollingSweep(
             machine, bench::sweepOver(params, bench::presets::pollSweep(2)),
             opts))
      printPollingRow(t, pt);
  } else {
    params.pollInterval =
        static_cast<std::uint64_t>(args.integer("interval"));
    printPollingRow(t, bench::runPollingPoint(machine, params));
  }
  std::printf("polling method, machine=%s, size=%s, queue=%d\n\n%s",
              machine.name.c_str(), fmtBytes(params.msgBytes).c_str(),
              params.queueDepth, t.str().c_str());
  return 0;
}

void printPwwRow(TextTable& t, const bench::PwwPoint& pt) {
  t.addRow({strFormat("%llu", (unsigned long long)pt.workInterval),
            strFormat("%.2f", toMBps(pt.bandwidthBps)),
            strFormat("%.3f", pt.availability),
            strFormat("%.1f", pt.avgPostPerOp * 1e6),
            strFormat("%.1f", pt.avgWork * 1e6),
            strFormat("%.1f", pt.avgWaitPerMsg * 1e6)});
}

int runPww(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pwwBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.batch = static_cast<int>(args.integer("batch"));
  params.testCallAtFraction = args.real("test-at");
  TextTable t({"work_interval", "bandwidth_MBps", "availability",
               "post_us_per_op", "work_us", "wait_us_per_msg"});
  if (args.flag("sweep")) {
    bench::RunOptions opts;
    opts.jobs = jobsFrom(args);
    for (const auto& pt : bench::runPwwSweep(
             machine, bench::sweepOver(params, bench::presets::workSweep(2)),
             opts))
      printPwwRow(t, pt);
  } else {
    params.workInterval = static_cast<std::uint64_t>(args.integer("work"));
    printPwwRow(t, bench::runPwwPoint(machine, params));
  }
  std::printf("post-work-wait method, machine=%s, size=%s, batch=%d%s\n\n%s",
              machine.name.c_str(), fmtBytes(params.msgBytes).c_str(),
              params.batch,
              params.testCallAtFraction >= 0 ? " (+MPI_Test in work)" : "",
              t.str().c_str());
  return 0;
}

int runLatency(const ArgParser& args) {
  const auto machine = machineFrom(args);
  bench::LatencyParams params;
  params.msgBytes = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  const auto pt = bench::runLatencyPoint(machine, params);
  std::printf("ping-pong, machine=%s, size=%s\n", machine.name.c_str(),
              fmtBytes(pt.msgBytes).c_str());
  std::printf("  half round trip: avg %s, min %s\n",
              fmtTime(pt.halfRoundTripAvg).c_str(),
              fmtTime(pt.halfRoundTripMin).c_str());
  std::printf("  bandwidth: %.2f MB/s\n", toMBps(pt.bandwidthBps));
  return 0;
}

int runAssess(const ArgParser& args) {
  const auto machine = machineFrom(args);
  bench::AssessOptions options;
  options.msgBytes = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  options.jobs = jobsFrom(args);
  const auto a = bench::assessMachine(machine, options);
  std::printf("COMB assessment, machine=%s, size=%s\n\n%s",
              a.machineName.c_str(), fmtBytes(a.msgBytes).c_str(),
              a.verdictText().c_str());
  return 0;
}

sim::Task<void> statsWorkerDriver(backend::SimProc& env,
                                  bench::PollingParams p,
                                  bench::PollingPoint& out) {
  out = co_await bench::pollingWorker(env, p);
}

int runStats(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pollingBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.pollInterval = static_cast<std::uint64_t>(args.integer("interval"));
  backend::SimCluster cluster(machine, 2);
  if (args.flag("trace")) cluster.enableTracing();
  bench::PollingPoint point;
  cluster.launch(0, statsWorkerDriver(cluster.proc(0), params, point));
  cluster.launch(1, bench::pollingSupport(cluster.proc(1), params));
  cluster.run();
  std::printf("polling workload: bw %.2f MB/s, availability %.3f\n\n",
              toMBps(point.bandwidthBps), point.availability);
  report::renderStats(std::cout, report::snapshot(cluster));
  if (auto* log = cluster.traceLog()) {
    std::printf("\ntrace: %s\n", log->summary().c_str());
    log->dump(std::cout,
              static_cast<std::size_t>(args.integer("trace-rows")));
  }
  return 0;
}

/// `comb trace`: run one fully traced point, audit the timeline against
/// the reported numbers, and export (--out) and/or summarize (--summary).
int runTrace(const ArgParser& args) {
  const auto machine = machineFrom(args);
  const Bytes size = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  const std::string method = args.str("method");

  std::unique_ptr<sim::TraceLog> log;
  report::MachineStats stats;
  std::string auditErr;
  double availability = 0;
  if (method == "pww") {
    auto params = bench::presets::pwwBase(size);
    params.batch = static_cast<int>(args.integer("batch"));
    params.testCallAtFraction = args.real("test-at");
    params.workInterval = static_cast<std::uint64_t>(args.integer("work"));
    auto run = bench::runPwwPointTraced(machine, params);
    auditErr = bench::checkPww(bench::auditPww(*run.trace), run.point);
    availability = run.point.availability;
    log = std::move(run.trace);
    stats = std::move(run.stats);
  } else if (method == "polling") {
    auto params = bench::presets::pollingBase(size);
    params.queueDepth = static_cast<int>(args.integer("queue"));
    params.pollInterval = static_cast<std::uint64_t>(args.integer("interval"));
    auto run = bench::runPollingPointTraced(machine, params);
    auditErr = bench::checkPolling(bench::auditPolling(*run.trace), run.point);
    availability = run.point.availability;
    log = std::move(run.trace);
    stats = std::move(run.stats);
  } else {
    throw ConfigError("--method must be polling or pww, got '" + method +
                      "'");
  }

  std::printf("traced %s point, machine=%s, size=%s: availability %.3f\n",
              method.c_str(), machine.name.c_str(), fmtBytes(size).c_str(),
              availability);
  if (const std::string out = args.str("out"); !out.empty()) {
    std::ofstream f(out);
    if (!f) throw ConfigError("--out: cannot open '" + out + "' for writing");
    report::writeChromeTrace(f, *log);
    std::printf("wrote %zu trace record(s) to %s\n", log->size(),
                out.c_str());
  }
  if (args.flag("summary")) {
    std::printf("\n");
    report::writeTraceSummary(std::cout, *log,
                              static_cast<std::size_t>(args.integer("top")));
  }
  if (args.flag("stats-json")) report::writeStatsJson(std::cout, stats);
  if (!auditErr.empty()) {
    std::printf("trace audit: FAIL — %s\n", auditErr.c_str());
    return 1;
  }
  std::printf("trace audit: OK — span data reproduces the reported stats\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string method = argv[1];
  if (method == "--help" || method == "-h" || method == "help") {
    usage();
    return 0;
  }
  try {
    auto args = makeParser(method);
    if (!args.parse(argc - 1, argv + 1)) return 0;
    if (method == "polling") return runPolling(args);
    if (method == "pww") return runPww(args);
    if (method == "latency") return runLatency(args);
    if (method == "assess") return runAssess(args);
    if (method == "stats") return runStats(args);
    if (method == "trace") return runTrace(args);
    std::fprintf(stderr, "comb: unknown method '%s'\n\n", method.c_str());
    usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "comb: %s\n", e.what());
    return 2;
  }
}
