// comb — the command-line front end of the benchmark suite.
//
//   comb polling --machine gm --size-kb 100 --interval 10000
//   comb polling --machine portals --size-kb 300 --sweep
//   comb pww     --machine gm --work 1000000 [--test-at 0.1] [--sweep]
//   comb latency --machine portals --size-kb 100
//   comb assess  --machine gm
//
// Machines are the bundled models (gm | portals), optionally modified by
// --cpus N --nic-cpu K (SMP extension) and --queue / --batch knobs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "backend/machine.hpp"
#include "backend/machine_file.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/analysis.hpp"
#include "comb/archive_build.hpp"
#include "comb/audit.hpp"
#include "comb/compare.hpp"
#include "comb/polling.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "comb/pww.hpp"
#include "common/ascii_plot.hpp"
#include "common/json.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "report/machine_stats.hpp"
#include "report/trace_export.hpp"

using namespace comb;
using namespace comb::units;

namespace {

void usage() {
  std::puts(
      "usage: comb <polling|pww|latency|assess|stats|trace|compare|hist> "
      "[options]\n"
      "  common options:\n"
      "    --machine M             gm | portals | progress_thread |\n"
      "                            progress_oversub | rdma (default gm)\n"
      "    --machine-file F        load a machine definition (.ini)\n"
      "    --size-kb N             message size in KB (default 100)\n"
      "    --cpus N --nic-cpu K    SMP extension knobs\n"
      "    --jobs N                worker threads for sweeps (0 = all\n"
      "                            cores); results are bit-identical\n"
      "    --sim-jobs N            simulator-core shards per cluster\n"
      "                            (1 = classic serial core; N > 1 is a\n"
      "                            distinct deterministic configuration)\n"
      "    --sim-affinity P        pin shard workers: none|compact|scatter\n"
      "                            (wall time only; results identical)\n"
      "    --fault SPEC            inject link faults, e.g.\n"
      "                            drop=0.01,burst=4,seed=7 (keys: drop,\n"
      "                            burst, corrupt, jitter_us, seed)\n"
      "    --noise SPEC            inject OS noise on every host CPU,\n"
      "                            e.g. period_us=250,duration_us=20\n"
      "                            (keys: period_us, duration_us, jitter,\n"
      "                            daemons, coalesce_us, seed)\n"
      "    --reps N                repetitions per point (default 1)\n"
      "    --reps-auto             adaptive reps: stop when the relative\n"
      "                            CI half-width reaches --ci-target\n"
      "    --ci-target F --max-reps N --seed S   adaptive-rep knobs\n"
      "    --archive DIR           write a result archive (per-rep\n"
      "                            samples + provenance) for `comb\n"
      "                            compare`\n"
      "  polling: --interval I | --sweep    --queue Q\n"
      "  pww:     --work W | --sweep        --batch B  --test-at F\n"
      "  latency: (size only)\n"
      "  assess:  full overlap assessment (all methods)\n"
      "  stats:   run a polling workload and dump substrate statistics\n"
      "  trace:   run one fully traced point (--method polling|pww),\n"
      "           audit it, and export/summarize the timeline\n"
      "           (--out FILE Chrome JSON, --summary, --top N,\n"
      "           --stats-json)\n"
      "  compare: comb compare BASELINE.json CANDIDATE.json\n"
      "           [--tolerance F] [--alpha F] [--all]\n"
      "           [--metric-class all|mean|tail]; exits 1 when the\n"
      "           candidate regressed. With one file of the\n"
      "           BENCH_sim_core.json shape, gates current vs baseline.\n"
      "  hist:    run one point (--method polling|pww) and render the\n"
      "           per-message latency distributions as ASCII CDFs\n"
      "           (--metric NAME for one instrument, --density for\n"
      "           per-bucket counts instead of the CDF)\n"
      "  try `comb <method> --help` for details");
}

ArgParser makeParser(const std::string& method) {
  ArgParser args("comb " + method, "COMB benchmark suite");
  args.addOption(
      "machine",
      "gm | portals | progress_thread | progress_oversub | rdma", "gm");
  args.addOption("machine-file", "load a machine definition file (.ini)", "");
  args.addOption("size-kb", "message size in KB", "100");
  args.addOption("cpus", "CPUs per node (SMP extension)", "1");
  args.addOption("nic-cpu", "CPU servicing NIC kernel work", "0");
  args.addFlag("sweep", "sweep the primary variable over the paper range");
  args.addOption("jobs",
                 "worker threads for sweep points (0 = all cores); results "
                 "are bit-identical for any value",
                 "0");
  args.addOption("sim-jobs",
                 "simulator-core shards per cluster (1 = classic serial "
                 "core; N > 1 is a distinct deterministic configuration "
                 "recorded in archives)",
                 "1");
  args.addOption("sim-affinity",
                 "shard-worker pinning: none | compact | scatter (wall "
                 "time only — results are identical across policies)",
                 "none");
  args.addOption("interval", "polling interval (loop iterations)", "10000");
  args.addOption("work", "PWW work interval (loop iterations)", "1000000");
  args.addOption("queue", "polling queue depth", "8");
  args.addOption("batch", "PWW batch size", "1");
  args.addOption("test-at", "insert MPI_Test at this work fraction (-1=off)",
                 "-1");
  args.addOption("fault",
                 "inject link faults, e.g. drop=0.01,burst=4,seed=7 "
                 "(keys: drop, burst, corrupt, jitter_us, seed)",
                 "");
  args.addOption("noise",
                 "inject OS noise on every host CPU, e.g. "
                 "period_us=250,duration_us=20 (keys: period_us, "
                 "duration_us, jitter, daemons, coalesce_us, seed)",
                 "");
  args.addOption("reps", "repetitions per measurement point", "1");
  args.addFlag("reps-auto",
               "adaptive reps: run until the relative CI half-width of the "
               "bandwidth reaches --ci-target (or --max-reps)");
  args.addOption("ci-target", "relative CI half-width to stop at", "0.05");
  args.addOption("max-reps", "rep budget for --reps-auto", "20");
  args.addOption("seed", "root seed for per-rep fault streams + bootstrap",
                 "49227");
  args.addOption("archive",
                 "write a result archive (per-rep samples, provenance) "
                 "into DIR",
                 "");
  args.addOption("tolerance",
                 "compare: relative delta below which changes are ignored",
                 "0.02");
  args.addOption("alpha", "compare: Mann-Whitney significance level",
                 "0.05");
  args.addFlag("all", "compare: print every compared row, not just flagged");
  args.addOption("metric-class",
                 "compare: gate only this metric class (all | mean | tail)",
                 "all");
  args.addOption("metric",
                 "hist: exact latency-instrument name to plot (default: "
                 "the merged mpi send/recv families)",
                 "");
  args.addFlag("density",
               "hist: plot per-bucket sample counts instead of the CDF");
  args.addFlag("trace", "stats: also dump the substrate event trace");
  args.addOption("trace-rows", "stats: trace rows to print", "40");
  args.addOption("method", "trace: workload to trace (polling | pww)", "pww");
  args.addOption("out", "trace: write Chrome trace JSON to FILE", "");
  args.addFlag("summary",
               "trace: print per-category counts and the longest spans");
  args.addOption("top", "trace: spans to show with --summary", "10");
  args.addFlag("stats-json",
               "trace: dump the machine-stats/metrics snapshot as JSON");
  return args;
}

/// Resolve --jobs: 0 means "all hardware threads"; anything negative is a
/// configuration error reported before any simulation starts.
int jobsFrom(const ArgParser& args) {
  const auto jobs = args.integer("jobs");
  if (jobs < 0)
    throw ConfigError("--jobs must be >= 0 (0 = all cores), got " +
                      args.str("jobs"));
  return jobs == 0 ? hardwareJobs() : static_cast<int>(jobs);
}

/// Resolve --sim-jobs with parse-time validation (any value below 1 is a
/// configuration error, reported before any simulation starts).
int simJobsFrom(const ArgParser& args) {
  const auto simJobs = args.integer("sim-jobs");
  if (simJobs < 1)
    throw ConfigError("--sim-jobs must be >= 1, got " + args.str("sim-jobs"));
  return static_cast<int>(simJobs);
}

/// Resolve --sim-affinity; sim::parseAffinityPolicy reports unknown
/// policy names as configuration errors before any simulation starts.
sim::AffinityPolicy simAffinityFrom(const ArgParser& args) {
  return sim::parseAffinityPolicy(args.str("sim-affinity"));
}

backend::MachineConfig machineFrom(const ArgParser& args) {
  backend::MachineConfig m;
  if (const std::string file = args.str("machine-file"); !file.empty()) {
    m = backend::loadMachineFile(file);
  } else {
    const std::string name = args.str("machine");
    if (name == "gm") {
      m = backend::gmMachine();
    } else if (name == "portals") {
      m = backend::portalsMachine();
    } else if (name == "progress_thread") {
      m = backend::progressThreadMachine();
    } else if (name == "progress_oversub") {
      m = backend::progressOversubMachine();
    } else if (name == "rdma") {
      m = backend::rdmaMachine();
    } else {
      throw ConfigError("unknown machine '" + name +
                        "' (gm | portals | progress_thread | "
                        "progress_oversub | rdma)");
    }
    // Presets pick their own CPU shape (progress_thread needs a second
    // core); only explicit --cpus / --nic-cpu override it.
    if (args.given("cpus"))
      m.cpusPerNode = static_cast<int>(args.integer("cpus"));
    if (args.given("nic-cpu"))
      m.nicCpu = static_cast<int>(args.integer("nic-cpu"));
  }
  // --fault / --noise override whatever the machine (or machine file)
  // specified.
  if (const std::string spec = args.str("fault"); !spec.empty())
    m.fabric.link.fault = net::parseFaultSpec(spec);
  if (const std::string spec = args.str("noise"); !spec.empty())
    m.noise = host::parseNoiseSpec(spec);
  return m;
}

/// The rep policy described by the common CLI flags.
bench::RepPolicy repPolicyFrom(const ArgParser& args) {
  bench::RepPolicy p;
  p.reps = static_cast<int>(args.integer("reps"));
  p.adaptive = args.flag("reps-auto");
  p.maxReps = static_cast<int>(args.integer("max-reps"));
  p.minReps = std::min(p.minReps, p.maxReps);
  p.ciTarget = args.real("ci-target");
  p.seed = static_cast<std::uint64_t>(args.integer("seed"));
  bench::validateRepPolicy(p);
  return p;
}

/// Per-rep dispersion columns appended when more than one rep ran.
void addRepColumns(std::vector<std::string>& header) {
  header.insert(header.end(),
                {"reps", "bw_median", "bw_mad", "bw_ci95", "conv"});
}

template <typename Point>
void addRepFields(std::vector<std::string>& row,
                  const bench::RepRun<Point>& run) {
  std::vector<double> bw;
  for (const auto& p : run.reps) bw.push_back(toMBps(p.bandwidthBps));
  row.push_back(strFormat("%zu", run.reps.size()));
  row.push_back(strFormat("%.2f", median(bw)));
  row.push_back(strFormat("%.3f", mad(bw)));
  row.push_back(strFormat("[%.2f, %.2f]", toMBps(run.bandwidthCi.lo),
                          toMBps(run.bandwidthCi.hi)));
  row.push_back(run.converged ? "yes" : "NO");
}

void printPollingRow(TextTable& t, const bench::RepRun<bench::PollingPoint>& run,
                     bool withReps) {
  const auto& pt = run.canonical();
  std::vector<std::string> row{
      strFormat("%llu", (unsigned long long)pt.pollInterval),
      strFormat("%.2f", toMBps(pt.bandwidthBps)),
      strFormat("%.3f", pt.availability),
      strFormat("%llu", (unsigned long long)pt.messagesReceived),
      strFormat("%.1f", pt.recvTail.p50 * 1e6),
      strFormat("%.1f", pt.recvTail.p99 * 1e6),
      strFormat("%.1f", pt.recvTail.p999 * 1e6)};
  if (withReps) addRepFields(row, run);
  t.addRow(std::move(row));
}

int runPolling(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pollingBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.queueDepth = static_cast<int>(args.integer("queue"));
  bench::RunOptions opts;
  opts.jobs = jobsFrom(args);
  opts.simJobs = simJobsFrom(args);
  opts.simAffinity = simAffinityFrom(args);
  opts.rep = repPolicyFrom(args);
  const bool withReps = opts.rep.adaptive || opts.rep.reps > 1;

  std::vector<std::string> header{"poll_interval", "bandwidth_MBps",
                                  "availability", "messages",
                                  "recv_p50_us", "recv_p99_us",
                                  "recv_p999_us"};
  if (withReps) addRepColumns(header);
  TextTable t(std::move(header));

  std::vector<std::uint64_t> xs;
  std::vector<bench::RepRun<bench::PollingPoint>> runs;
  if (args.flag("sweep")) {
    xs = bench::presets::pollSweep(2);
    runs = bench::runPollingSweepReps(machine, bench::sweepOver(params, xs),
                                      opts);
  } else {
    params.pollInterval =
        static_cast<std::uint64_t>(args.integer("interval"));
    xs = {params.pollInterval};
    runs = {bench::runPollingPointReps(machine, params, opts)};
  }
  for (const auto& run : runs) printPollingRow(t, run, withReps);
  std::printf("polling method, machine=%s, size=%s, queue=%d\n\n%s",
              machine.name.c_str(), fmtBytes(params.msgBytes).c_str(),
              params.queueDepth, t.str().c_str());
  if (const std::string dir = args.str("archive"); !dir.empty()) {
    auto archive = bench::makeArchive("comb_polling_" + machine.name,
                                      opts.rep, opts.simJobs,
                                      opts.simAffinity);
    bench::appendPollingSweep(archive, "polling/" + machine.name + "/" +
                                           fmtBytes(params.msgBytes),
                              machine, xs, runs);
    std::printf("archive: %s\n",
                report::writeArchiveFile(archive, dir).c_str());
  }
  return 0;
}

void printPwwRow(TextTable& t, const bench::RepRun<bench::PwwPoint>& run,
                 bool withReps) {
  const auto& pt = run.canonical();
  std::vector<std::string> row{
      strFormat("%llu", (unsigned long long)pt.workInterval),
      strFormat("%.2f", toMBps(pt.bandwidthBps)),
      strFormat("%.3f", pt.availability),
      strFormat("%.1f", pt.avgPostPerOp * 1e6),
      strFormat("%.1f", pt.avgWork * 1e6),
      strFormat("%.1f", pt.avgWaitPerMsg * 1e6),
      strFormat("%.1f", pt.recvTail.p99 * 1e6),
      strFormat("%.1f", pt.recvTail.p999 * 1e6)};
  if (withReps) addRepFields(row, run);
  t.addRow(std::move(row));
}

int runPww(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pwwBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.batch = static_cast<int>(args.integer("batch"));
  params.testCallAtFraction = args.real("test-at");
  bench::RunOptions opts;
  opts.jobs = jobsFrom(args);
  opts.simJobs = simJobsFrom(args);
  opts.simAffinity = simAffinityFrom(args);
  opts.rep = repPolicyFrom(args);
  const bool withReps = opts.rep.adaptive || opts.rep.reps > 1;

  std::vector<std::string> header{"work_interval", "bandwidth_MBps",
                                  "availability", "post_us_per_op", "work_us",
                                  "wait_us_per_msg", "recv_p99_us",
                                  "recv_p999_us"};
  if (withReps) addRepColumns(header);
  TextTable t(std::move(header));

  std::vector<std::uint64_t> xs;
  std::vector<bench::RepRun<bench::PwwPoint>> runs;
  if (args.flag("sweep")) {
    xs = bench::presets::workSweep(2);
    runs = bench::runPwwSweepReps(machine, bench::sweepOver(params, xs), opts);
  } else {
    params.workInterval = static_cast<std::uint64_t>(args.integer("work"));
    xs = {params.workInterval};
    runs = {bench::runPwwPointReps(machine, params, opts)};
  }
  for (const auto& run : runs) printPwwRow(t, run, withReps);
  std::printf("post-work-wait method, machine=%s, size=%s, batch=%d%s\n\n%s",
              machine.name.c_str(), fmtBytes(params.msgBytes).c_str(),
              params.batch,
              params.testCallAtFraction >= 0 ? " (+MPI_Test in work)" : "",
              t.str().c_str());
  if (const std::string dir = args.str("archive"); !dir.empty()) {
    auto archive = bench::makeArchive("comb_pww_" + machine.name, opts.rep,
                                      opts.simJobs, opts.simAffinity);
    bench::appendPwwSweep(archive, "pww/" + machine.name + "/" +
                                       fmtBytes(params.msgBytes),
                          machine, xs, runs);
    std::printf("archive: %s\n",
                report::writeArchiveFile(archive, dir).c_str());
  }
  return 0;
}

int runLatency(const ArgParser& args) {
  const auto machine = machineFrom(args);
  bench::LatencyParams params;
  params.msgBytes = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  bench::RunOptions opts;
  opts.simJobs = simJobsFrom(args);
  opts.simAffinity = simAffinityFrom(args);
  opts.rep = repPolicyFrom(args);
  const auto run = bench::runLatencyPointReps(machine, params, opts);
  const auto& pt = run.canonical();
  std::printf("ping-pong, machine=%s, size=%s\n", machine.name.c_str(),
              fmtBytes(pt.msgBytes).c_str());
  std::printf("  half round trip: avg %s, min %s\n",
              fmtTime(pt.halfRoundTripAvg).c_str(),
              fmtTime(pt.halfRoundTripMin).c_str());
  std::printf("  bandwidth: %.2f MB/s\n", toMBps(pt.bandwidthBps));
  std::printf("  send latency tails (us): p50 %.1f, p90 %.1f, p99 %.1f, "
              "p999 %.1f over %llu msgs\n",
              pt.sendTail.p50 * 1e6, pt.sendTail.p90 * 1e6,
              pt.sendTail.p99 * 1e6, pt.sendTail.p999 * 1e6,
              (unsigned long long)pt.sendTail.count);
  if (run.reps.size() > 1)
    std::printf("  reps: %zu, bandwidth CI95 [%.2f, %.2f] MB/s%s\n",
                run.reps.size(), toMBps(run.bandwidthCi.lo),
                toMBps(run.bandwidthCi.hi),
                run.converged ? "" : " (CI target NOT reached)");
  if (const std::string dir = args.str("archive"); !dir.empty()) {
    auto archive = bench::makeArchive("comb_latency_" + machine.name,
                                      opts.rep, opts.simJobs,
                                      opts.simAffinity);
    bench::appendLatencySweep(archive, "latency/" + machine.name, machine,
                              {params.msgBytes}, {run});
    std::printf("archive: %s\n",
                report::writeArchiveFile(archive, dir).c_str());
  }
  return 0;
}

/// `comb compare`: the regression gate. Two positional archive paths, or
/// one BENCH_sim_core.json-shaped baseline file.
int runCompare(const ArgParser& args) {
  bench::CompareOptions opts;
  opts.tolerance = args.real("tolerance");
  opts.alpha = args.real("alpha");
  opts.seed = static_cast<std::uint64_t>(args.integer("seed"));
  opts.metricClass = bench::parseMetricClass(args.str("metric-class"));
  const auto& paths = args.positional();

  bench::CompareReport report;
  if (paths.size() == 2) {
    const auto baseline = report::loadArchiveFile(paths[0]);
    const auto candidate = report::loadArchiveFile(paths[1]);
    std::printf("comparing archives: baseline %s (git %s) vs candidate %s "
                "(git %s), tolerance %.1f%%, metric class %s\n",
                paths[0].c_str(), baseline.provenance.gitSha.c_str(),
                paths[1].c_str(), candidate.provenance.gitSha.c_str(),
                100.0 * opts.tolerance,
                bench::metricClassName(opts.metricClass));
    report = bench::compareArchives(baseline, candidate, opts);
  } else if (paths.size() == 1) {
    const auto doc = json::parseFile(paths[0]);
    std::printf("comparing '%s' current vs baseline, tolerance %.1f%%\n",
                paths[0].c_str(), 100.0 * opts.tolerance);
    report = bench::compareBenchJson(doc, opts);
  } else {
    throw ConfigError(
        "compare needs `comb compare BASELINE.json CANDIDATE.json` or one "
        "BENCH_sim_core.json-shaped file");
  }
  bench::renderCompare(std::cout, report, args.flag("all"));
  return report.hasRegressions() ? 1 : 0;
}

int runAssess(const ArgParser& args) {
  const auto machine = machineFrom(args);
  bench::AssessOptions options;
  options.msgBytes = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  options.jobs = jobsFrom(args);
  options.simJobs = simJobsFrom(args);
  options.simAffinity = simAffinityFrom(args);
  const auto a = bench::assessMachine(machine, options);
  std::printf("COMB assessment, machine=%s, size=%s\n\n%s",
              a.machineName.c_str(), fmtBytes(a.msgBytes).c_str(),
              a.verdictText().c_str());
  return 0;
}

sim::Task<void> statsWorkerDriver(backend::SimProc& env,
                                  bench::PollingParams p,
                                  bench::PollingPoint& out) {
  out = co_await bench::pollingWorker(env, p);
}

int runStats(const ArgParser& args) {
  const auto machine = machineFrom(args);
  auto params = bench::presets::pollingBase(
      static_cast<Bytes>(args.integer("size-kb")) * 1024);
  params.pollInterval = static_cast<std::uint64_t>(args.integer("interval"));
  backend::SimCluster cluster(machine, 2, simJobsFrom(args),
                              /*workers=*/0, simAffinityFrom(args));
  if (args.flag("trace")) cluster.enableTracing();
  bench::PollingPoint point;
  cluster.launch(0, statsWorkerDriver(cluster.proc(0), params, point));
  cluster.launch(1, bench::pollingSupport(cluster.proc(1), params));
  cluster.run();
  std::printf("polling workload: bw %.2f MB/s, availability %.3f\n\n",
              toMBps(point.bandwidthBps), point.availability);
  report::renderStats(std::cout, report::snapshot(cluster));
  if (auto* log = cluster.traceLog()) {
    std::printf("\ntrace: %s\n", log->summary().c_str());
    log->dump(std::cout,
              static_cast<std::size_t>(args.integer("trace-rows")));
  }
  return 0;
}

/// `comb trace`: run one fully traced point, audit the timeline against
/// the reported numbers, and export (--out) and/or summarize (--summary).
int runTrace(const ArgParser& args) {
  const auto machine = machineFrom(args);
  const Bytes size = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  const std::string method = args.str("method");

  std::unique_ptr<sim::TraceLog> log;
  report::MachineStats stats;
  std::string auditErr;
  double availability = 0;
  if (method == "pww") {
    auto params = bench::presets::pwwBase(size);
    params.batch = static_cast<int>(args.integer("batch"));
    params.testCallAtFraction = args.real("test-at");
    params.workInterval = static_cast<std::uint64_t>(args.integer("work"));
    bench::RunOptions opts;
    opts.simJobs = simJobsFrom(args);
  opts.simAffinity = simAffinityFrom(args);
    auto run = bench::runPwwPointTraced(machine, params, opts);
    auditErr = bench::checkPww(bench::auditPww(*run.trace), run.point);
    availability = run.point.availability;
    log = std::move(run.trace);
    stats = std::move(run.stats);
  } else if (method == "polling") {
    auto params = bench::presets::pollingBase(size);
    params.queueDepth = static_cast<int>(args.integer("queue"));
    params.pollInterval = static_cast<std::uint64_t>(args.integer("interval"));
    bench::RunOptions opts;
    opts.simJobs = simJobsFrom(args);
  opts.simAffinity = simAffinityFrom(args);
    auto run = bench::runPollingPointTraced(machine, params, opts);
    auditErr = bench::checkPolling(bench::auditPolling(*run.trace), run.point);
    availability = run.point.availability;
    log = std::move(run.trace);
    stats = std::move(run.stats);
  } else {
    throw ConfigError("--method must be polling or pww, got '" + method +
                      "'");
  }

  std::printf("traced %s point, machine=%s, size=%s: availability %.3f\n",
              method.c_str(), machine.name.c_str(), fmtBytes(size).c_str(),
              availability);
  if (const std::string out = args.str("out"); !out.empty()) {
    std::ofstream f(out);
    if (!f) throw ConfigError("--out: cannot open '" + out + "' for writing");
    report::writeChromeTrace(f, *log);
    std::printf("wrote %zu trace record(s) to %s\n", log->size(),
                out.c_str());
  }
  if (args.flag("summary")) {
    std::printf("\n");
    report::writeTraceSummary(std::cout, *log,
                              static_cast<std::size_t>(args.integer("top")));
  }
  if (args.flag("stats-json")) report::writeStatsJson(std::cout, stats);
  if (!auditErr.empty()) {
    std::printf("trace audit: FAIL — %s\n", auditErr.c_str());
    return 1;
  }
  std::printf("trace audit: OK — span data reproduces the reported stats\n");
  return 0;
}

sim::Task<void> histPwwDriver(backend::SimProc& env, bench::PwwParams p,
                              bench::PwwPoint& out) {
  out = co_await bench::pwwWorker(env, p);
}

/// One plot series per latency sample: the empirical CDF (default) or the
/// per-bucket sample counts (--density), x in microseconds.
PlotSeries latencySeries(const metrics::LatencySample& sample,
                         std::string name, bool density) {
  PlotSeries s;
  s.name = std::move(name);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
    const std::uint64_t c = sample.buckets[b];
    if (c == 0) continue;
    cum += c;
    const double midTicks =
        0.5 * (static_cast<double>(LatencyRecorder::bucketLowTicks(b)) +
               static_cast<double>(LatencyRecorder::bucketHighTicks(b)));
    s.xs.push_back(midTicks * 1e-3);  // ticks are ns; plot in us
    s.ys.push_back(density ? static_cast<double>(c)
                           : static_cast<double>(cum) /
                                 static_cast<double>(sample.count));
  }
  return s;
}

void printTailLine(const char* label, const TailSummary& t) {
  std::printf("  %-28s n=%llu  mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f  "
              "p999 %.1f  max %.1f (us)\n",
              label, (unsigned long long)t.count, t.mean * 1e6, t.p50 * 1e6,
              t.p90 * 1e6, t.p99 * 1e6, t.p999 * 1e6, t.max * 1e6);
}

/// `comb hist`: run one point and render the per-message latency
/// distributions as ASCII CDFs (or bucket densities).
int runHist(const ArgParser& args) {
  const auto machine = machineFrom(args);
  const Bytes size = static_cast<Bytes>(args.integer("size-kb")) * 1024;
  const std::string method = args.str("method");
  backend::SimCluster cluster(machine, 2, simJobsFrom(args), /*workers=*/0,
                              simAffinityFrom(args));
  bench::PollingPoint pollPoint;
  bench::PwwPoint pwwPoint;
  if (method == "polling") {
    auto params = bench::presets::pollingBase(size);
    params.queueDepth = static_cast<int>(args.integer("queue"));
    params.pollInterval = static_cast<std::uint64_t>(args.integer("interval"));
    cluster.launch(0, statsWorkerDriver(cluster.proc(0), params, pollPoint));
    cluster.launch(1, bench::pollingSupport(cluster.proc(1), params));
  } else if (method == "pww") {
    auto params = bench::presets::pwwBase(size);
    params.batch = static_cast<int>(args.integer("batch"));
    params.workInterval = static_cast<std::uint64_t>(args.integer("work"));
    cluster.launch(0, histPwwDriver(cluster.proc(0), params, pwwPoint));
    cluster.launch(1, bench::pwwSupport(cluster.proc(1), params));
  } else {
    throw ConfigError("--method must be polling or pww, got '" + method +
                      "'");
  }
  cluster.run();
  const auto snap = cluster.metricsSnapshot();
  const bool density = args.flag("density");

  std::vector<PlotSeries> series;
  std::printf("%s point, machine=%s, size=%s\n", method.c_str(),
              machine.name.c_str(), fmtBytes(size).c_str());
  if (const std::string name = args.str("metric"); !name.empty()) {
    const metrics::LatencySample* sample = snap.latency(name);
    if (sample == nullptr || sample->count == 0) {
      std::printf("no samples under latency instrument '%s'; available:\n",
                  name.c_str());
      for (const auto& l : snap.latencies)
        if (l.count > 0)
          std::printf("  %s (%llu samples)\n", l.name.c_str(),
                      (unsigned long long)l.count);
      return 2;
    }
    printTailLine(name.c_str(), sample->tail());
    series.push_back(latencySeries(*sample, name, density));
  } else {
    const auto send =
        metrics::mergeLatencyFamily(snap, "mpi.n", ".send_latency");
    const auto recv =
        metrics::mergeLatencyFamily(snap, "mpi.n", ".recv_latency");
    printTailLine("send (all ranks)", send.tail());
    printTailLine("recv (all ranks)", recv.tail());
    if (send.count) series.push_back(latencySeries(send, "send", density));
    if (recv.count) series.push_back(latencySeries(recv, "recv", density));
  }
  if (series.empty()) {
    std::printf("no latency samples recorded\n");
    return 2;
  }
  PlotOptions plot;
  plot.logX = true;
  plot.xlabel = "latency_us";
  plot.ylabel = density ? "samples_per_bucket" : "cumulative_fraction";
  plot.title = density ? "latency bucket density" : "latency CDF";
  if (!density) {
    plot.ymin = 0.0;
    plot.ymax = 1.0;
  }
  renderPlot(std::cout, series, plot);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string method = argv[1];
  if (method == "--help" || method == "-h" || method == "help") {
    usage();
    return 0;
  }
  try {
    auto args = makeParser(method);
    if (!args.parse(argc - 1, argv + 1)) return 0;
    if (method == "polling") return runPolling(args);
    if (method == "pww") return runPww(args);
    if (method == "latency") return runLatency(args);
    if (method == "assess") return runAssess(args);
    if (method == "stats") return runStats(args);
    if (method == "trace") return runTrace(args);
    if (method == "compare") return runCompare(args);
    if (method == "hist") return runHist(args);
    std::fprintf(stderr, "comb: unknown method '%s'\n\n", method.c_str());
    usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "comb: %s\n", e.what());
    return 2;
  }
}
