// Figure 12 — PWW method: CPU overhead, Portals.
//
// Paper: plots time to complete the work phase with message handling
// ("Work with MH") against the same work without communication ("Work
// Only"), on a LINEAR work-interval axis. For kernel-based Portals the
// with-MH line sits visibly above: interrupts and kernel copies steal
// cycles from the application during its work phase.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

std::vector<std::uint64_t> linearSweep() {
  std::vector<std::uint64_t> xs;
  for (std::uint64_t v = 50'000; v <= 500'000; v += 50'000) xs.push_back(v);
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(argc, argv, "fig12",
                                    "PWW method: CPU overhead (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = linearSweep();
  const auto runs =
      runPwwSweepReps(backend::portalsMachine(),
                      sweepOver(presets::pwwBase(100_KB), intervals),
                      args.runOptions());
  const auto pts = canonicalPoints(runs);

  report::Figure fig("fig12", "PWW Method: CPU Overhead (Portals)",
                     "work_interval_iters", "work_phase_us");
  fig.paperExpectation(
      "'Work with MH' visibly above 'Work Only': interrupt + kernel-copy "
      "overhead stretches the work phase while messages flow");

  auto withMh = makeSeries("Work with MH", intervals, pts,
                           [](const PwwPoint& p) { return p.avgWork * 1e6; });
  auto workOnly = makeSeries("Work Only", intervals, pts,
                             [](const PwwPoint& p) { return p.dryWork * 1e6; });

  std::vector<report::ShapeCheck> checks;
  // Every point: with-MH above work-only by a clear margin somewhere.
  bool allAbove = true;
  double maxGap = 0;
  for (std::size_t i = 0; i < withMh.ys.size(); ++i) {
    allAbove = allAbove && withMh.ys[i] >= workOnly.ys[i];
    maxGap = std::max(maxGap, withMh.ys[i] - workOnly.ys[i]);
  }
  checks.push_back(report::ShapeCheck{
      "work-with-MH >= work-only at every interval", allAbove,
      strFormat("max gap %.0f us", maxGap)});
  checks.push_back(report::ShapeCheck{
      "overhead gap is substantial (> 100 us somewhere)", maxGap > 100.0,
      strFormat("max gap %.0f us", maxGap)});
  checks.push_back(report::checkNearlyMonotone(
      "work-only grows linearly with the interval", workOnly.ys, true, 1.0));
  fig.addSeries(std::move(withMh));
  fig.addSeries(std::move(workOnly));

  FigArchive archive("fig12_pww_overhead_portals", args);
  archive.addPww("pww/portals/100 KB", backend::portalsMachine(), intervals,
                 runs);
  archive.write();

  // --trace: re-run the middle sweep point fully traced, export, audit.
  auto traced = presets::pwwBase(100_KB);
  traced.workInterval = intervals[intervals.size() / 2];
  const bool traceOk =
      maybeTracePww(backend::portalsMachine(), traced, args);

  const int rc = finishFigure(fig, checks, args);
  return traceOk ? rc : std::max(rc, 1);
}
