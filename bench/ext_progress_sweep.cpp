// Extension — overlap-taxonomy sweep: who makes progress when the host
// does not poll?
//
// Generalizes fig17's MPI_Test-injection experiment across the four
// progress models ({gm, portals, progress_thread, rdma}, plus the
// oversubscribed progress-thread placement) × message size ×
// work-per-poll, reporting availability, bandwidth and the recv-latency
// percentiles. Expected shape (see docs/progress_models.md):
//
//  * GM only progresses inside library calls, so its availability dips
//    in the mid-interval band where polls keep finding unfinished
//    messages and the host pays the progress loop itself.
//  * The progress thread recovers that availability: a dedicated engine
//    core polls the NIC, so host polls find completed messages. The
//    oversubscribed placement recovers it too but pays a bandwidth tax —
//    the engine steals worker cycles instead of its own core.
//  * RDMA dominates availability AND the recv tail: matching and
//    rendezvous are NIC-resident, no host cycle is ever charged and no
//    message waits for a wakeup.
//  * Portals trades availability for autonomy: per-fragment kernel
//    interrupts inflate host work (low availability) even though the
//    protocol itself never waits on the host.
//
// Every point is bit-reproducible for any --jobs value; the bench
// verifies the latency-distribution fields survive that round trip too.
#include "fig_common.hpp"

#include <algorithm>

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

struct StackSweep {
  std::string label;
  backend::MachineConfig machine;
  std::vector<RepRun<PollingPoint>> reps;
  std::vector<PollingPoint> points;
};

std::vector<RepRun<PollingPoint>> progressSweep(
    const backend::MachineConfig& machine, Bytes msgBytes,
    const std::vector<std::uint64_t>& intervals, const FigArgs& args,
    int jobs) {
  RunOptions opts = args.runOptions();
  opts.jobs = jobs;
  return runPollingSweepReps(
      machine, sweepOver(presets::pollingBase(msgBytes), intervals), opts);
}

bool sameTail(const TailSummary& a, const TailSummary& b) {
  return a.count == b.count && a.mean == b.mean && a.min == b.min &&
         a.max == b.max && a.p50 == b.p50 && a.p90 == b.p90 &&
         a.p99 == b.p99 && a.p999 == b.p999;
}

bool samePoint(const PollingPoint& a, const PollingPoint& b) {
  return a.availability == b.availability &&
         a.bandwidthBps == b.bandwidthBps && a.liveTime == b.liveTime &&
         a.messagesReceived == b.messagesReceived &&
         a.shardImbalance == b.shardImbalance &&
         sameTail(a.sendTail, b.sendTail) && sameTail(a.recvTail, b.recvTail);
}

template <typename F>
report::Series stackSeries(const std::string& name,
                           const std::vector<std::uint64_t>& xs,
                           const std::vector<PollingPoint>& pts, F&& yOf) {
  report::Series s;
  s.name = name;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.xs.push_back(static_cast<double>(xs[i]));
    s.ys.push_back(yOf(pts[i]));
  }
  return s;
}

double minAvail(const std::vector<PollingPoint>& pts) {
  double v = 1.0;
  for (const auto& p : pts) v = std::min(v, p.availability);
  return v;
}

double peakBw(const std::vector<PollingPoint>& pts) {
  double v = 0.0;
  for (const auto& p : pts) v = std::max(v, toMBps(p.bandwidthBps));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "ext_progress_sweep",
      "availability/bandwidth/recv-tail vs work-per-poll across the "
      "progress-model taxonomy: gm, portals, progress_thread (dedicated "
      "and oversubscribed), rdma");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = presets::pollSweep(args.pointsPerDecade);
  const Bytes headlineSize = 100_KB;
  // Second size for the archive gate: small enough to stay eager on
  // every stack, so the gate also covers the non-rendezvous paths.
  const Bytes eagerSize = 10_KB;

  std::vector<StackSweep> stacks;
  stacks.push_back({"GM", backend::gmMachine(), {}, {}});
  stacks.push_back({"Portals", backend::portalsMachine(), {}, {}});
  stacks.push_back({"ProgressThread", backend::progressThreadMachine(), {}, {}});
  stacks.push_back({"ProgressOversub", backend::progressOversubMachine(), {}, {}});
  stacks.push_back({"RDMA", backend::rdmaMachine(), {}, {}});

  for (auto& s : stacks) {
    s.reps = progressSweep(s.machine, headlineSize, intervals, args,
                           args.jobs);
    s.points = canonicalPoints(s.reps);
  }
  const auto& gm = stacks[0].points;
  const auto& portals = stacks[1].points;
  const auto& pt = stacks[2].points;
  const auto& ptOver = stacks[3].points;
  const auto& rdma = stacks[4].points;

  // Re-run one sweep serially: a parallel schedule must not change bits —
  // including the latency-distribution fields.
  const auto ptSerial = progressSweep(stacks[2].machine, headlineSize,
                                      intervals, args, 1);

  const auto availOf = [](const PollingPoint& p) { return p.availability; };
  const auto bwOf = [](const PollingPoint& p) {
    return toMBps(p.bandwidthBps);
  };
  const auto p999Of = [](const PollingPoint& p) {
    return p.recvTail.p999 * 1e6;
  };

  report::Figure availFig(
      "ext_progress_avail",
      "Extension: Availability vs Work-per-Poll, by Progress Model",
      "work_iters_per_poll", "availability");
  availFig.paperExpectation(
      "GM availability dips where polls keep finding unfinished messages "
      "(the host pays the progress loop); the progress thread and RDMA "
      "hold availability across the whole band; Portals sits lowest — "
      "per-fragment interrupts inflate host work at every interval");
  report::Figure bwFig(
      "ext_progress_bw",
      "Extension: Bandwidth vs Work-per-Poll, by Progress Model",
      "work_iters_per_poll", "bandwidth_MBps");
  bwFig.paperExpectation(
      "all stacks lose bandwidth once polls are too sparse to recycle "
      "receive tokens; the oversubscribed progress thread pays an extra "
      "bandwidth tax over the dedicated placement (the engine steals "
      "worker cycles)");
  report::Figure tailFig(
      "ext_progress_tail",
      "Extension: Recv-Latency p999 vs Work-per-Poll, by Progress Model",
      "work_iters_per_poll", "recv_p999_us");
  tailFig.paperExpectation(
      "RDMA's hardware matching keeps the recv p999 at the wire floor; "
      "host-driven stacks stretch the tail with the poll interval because "
      "a message's completion waits for the next library call");

  for (const auto& s : stacks) {
    availFig.addSeries(stackSeries(s.label, intervals, s.points, availOf));
    bwFig.addSeries(stackSeries(s.label, intervals, s.points, bwOf));
    tailFig.addSeries(stackSeries(s.label, intervals, s.points, p999Of));
  }

  availFig.render(std::cout);
  if (args.csv)
    std::cout << "csv: " << availFig.writeCsvFile(args.outDir) << '\n';
  bwFig.render(std::cout);
  if (args.csv)
    std::cout << "csv: " << bwFig.writeCsvFile(args.outDir) << '\n';

  std::vector<report::ShapeCheck> checks;

  bool availInRange = true, tailsPopulated = true;
  for (const auto& s : stacks)
    for (const auto& p : s.points) {
      availInRange =
          availInRange && p.availability >= 0.0 && p.availability <= 1.0;
      tailsPopulated = tailsPopulated && p.recvTail.count > 0 &&
                       p.sendTail.count > 0;
    }
  checks.push_back(
      report::ShapeCheck{"availability within [0, 1]", availInRange, ""});
  checks.push_back(report::ShapeCheck{
      "every point recorded send and recv latency samples", tailsPopulated,
      ""});

  // The tentpole shape: the dedicated progress thread recovers GM's lost
  // availability — its worst point over the sweep sits at or above GM's.
  const double gmFloor = minAvail(gm);
  const double ptFloor = minAvail(pt);
  const double ptOverFloor = minAvail(ptOver);
  const double rdmaFloor = minAvail(rdma);
  checks.push_back(report::ShapeCheck{
      "progress thread recovers GM's lost availability (worst-point "
      "availability >= GM's)",
      ptFloor >= gmFloor,
      strFormat("GM floor %.3f, progress_thread floor %.3f", gmFloor,
                ptFloor)});
  checks.push_back(report::ShapeCheck{
      "oversubscribed placement also recovers availability",
      ptOverFloor >= gmFloor,
      strFormat("GM floor %.3f, oversubscribed floor %.3f", gmFloor,
                ptOverFloor)});

  // ...at a bandwidth cost when oversubscribed: the engine steals worker
  // cycles, so the oversubscribed peak sits below the dedicated peak.
  const double ptPeak = peakBw(pt);
  const double ptOverPeak = peakBw(ptOver);
  checks.push_back(report::ShapeCheck{
      "oversubscription costs bandwidth vs the dedicated placement",
      ptOverPeak <= ptPeak,
      strFormat("dedicated peak %.2f MB/s, oversubscribed peak %.2f MB/s",
                ptPeak, ptOverPeak)});

  // The fig17 generalization: where GM's polls are too sparse to drive
  // the protocol (1e6 work iterations between library calls), the
  // autonomous stacks keep streaming — their bandwidth clearly exceeds
  // GM's at the same interval.
  std::size_t sparse = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i)
    if (std::llabs(static_cast<long long>(intervals[i]) - 1'000'000) <
        std::llabs(static_cast<long long>(intervals[sparse]) - 1'000'000))
      sparse = i;
  const double gmSparseBw = toMBps(gm[sparse].bandwidthBps);
  const double ptSparseBw = toMBps(pt[sparse].bandwidthBps);
  const double rdmaSparseBw = toMBps(rdma[sparse].bandwidthBps);
  checks.push_back(report::ShapeCheck{
      "autonomous stacks sustain bandwidth at sparse polling (1.2x GM at "
      "~1e6 iters/poll)",
      ptSparseBw >= 1.2 * gmSparseBw && rdmaSparseBw >= 1.2 * gmSparseBw,
      strFormat("at %llu iters/poll: gm %.2f, progress_thread %.2f, rdma "
                "%.2f MB/s",
                static_cast<unsigned long long>(intervals[sparse]),
                gmSparseBw, ptSparseBw, rdmaSparseBw)});

  // RDMA dominates availability: its worst point beats every other
  // stack's worst point.
  const bool rdmaAvailDominates = rdmaFloor >= gmFloor &&
                                  rdmaFloor >= ptFloor &&
                                  rdmaFloor >= ptOverFloor &&
                                  rdmaFloor >= minAvail(portals);
  checks.push_back(report::ShapeCheck{
      "RDMA dominates availability (highest worst-point availability)",
      rdmaAvailDominates,
      strFormat("floors: rdma %.3f, progress_thread %.3f, gm %.3f, "
                "portals %.3f",
                rdmaFloor, ptFloor, gmFloor, minAvail(portals))});

  // ...and the recv tail: hardware matching never waits for a host poll
  // or an engine wakeup, so its worst p999 over the sweep is the lowest.
  const auto worstP999 = [&](const std::vector<PollingPoint>& pts) {
    double v = 0.0;
    for (const auto& p : pts) v = std::max(v, p.recvTail.p999 * 1e6);
    return v;
  };
  const bool rdmaTailDominates =
      worstP999(rdma) <= worstP999(gm) && worstP999(rdma) <= worstP999(pt) &&
      worstP999(rdma) <= worstP999(ptOver) &&
      worstP999(rdma) <= worstP999(portals);
  checks.push_back(report::ShapeCheck{
      "RDMA dominates the recv tail (lowest worst-case p999)",
      rdmaTailDominates,
      strFormat("worst p999: rdma %.1f us, progress_thread %.1f us, gm "
                "%.1f us, portals %.1f us",
                worstP999(rdma), worstP999(pt), worstP999(gm),
                worstP999(portals))});

  bool bitIdentical = ptSerial.size() == stacks[2].reps.size();
  for (std::size_t i = 0; bitIdentical && i < ptSerial.size(); ++i)
    bitIdentical =
        samePoint(stacks[2].reps[i].canonical(), ptSerial[i].canonical());
  checks.push_back(report::ShapeCheck{
      strFormat("bit-identical results (incl. tails) for --jobs 1 vs "
                "--jobs %d",
                args.jobs),
      bitIdentical, ""});

  FigArchive archive("ext_progress_sweep", args);
  for (auto& s : stacks) {
    archive.addPolling("progress/" + s.label + "/" + sizeLabel(headlineSize),
                       s.machine, intervals, s.reps);
    // The eager-size family only feeds the archive gate (no figure): it
    // covers the non-rendezvous protocol paths on every stack.
    if (archive.enabled())
      archive.addPolling("progress/" + s.label + "/" + sizeLabel(eagerSize),
                         s.machine, intervals,
                         progressSweep(s.machine, eagerSize, intervals, args,
                                       args.jobs));
  }
  archive.write();

  return finishFigure(tailFig, checks, args);
}
