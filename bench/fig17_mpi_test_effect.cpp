// Figure 17 — Polling, PWW and PWW+MPI_Test: bandwidth vs availability,
// GM (100 KB).
//
// Paper §4.3: inserting ONE MPI_Test() early in the PWW work phase lets
// the library-driven GM stack progress the rendezvous during the work
// phase, extending sustained bandwidth into much higher availabilities —
// direct evidence that MPICH/GM needs library calls to move data (an MPI
// progress-rule violation).
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig17",
      "Polling + PWW + PWW-with-MPI_Test: bandwidth vs availability, GM");
  if (!args.parsedOk) return args.exitCode;

  const auto pollIntervals = presets::pollSweep(args.pointsPerDecade + 1);
  const auto pollRuns = runPollingSweepReps(
      backend::gmMachine(),
      sweepOver(presets::pollingBase(100_KB), pollIntervals),
      args.runOptions());
  const auto workIntervals = presets::workSweep(args.pointsPerDecade + 1);
  const auto pwwRuns =
      runPwwSweepReps(backend::gmMachine(),
                      sweepOver(presets::pwwBase(100_KB), workIntervals),
                      args.runOptions());
  auto testBase = presets::pwwBase(100_KB);
  testBase.testCallAtFraction = 0.1;  // one MPI_Test early in the work phase
  const auto pwwTestRuns = runPwwSweepReps(backend::gmMachine(),
                                           sweepOver(testBase, workIntervals),
                                           args.runOptions());
  const auto poll = canonicalPoints(pollRuns);
  const auto pww = canonicalPoints(pwwRuns);
  const auto pwwTest = canonicalPoints(pwwTestRuns);

  report::Figure fig(
      "fig17", "Polling and Modified PWW: Bandwidth vs Availability (GM)",
      "cpu_availability", "bandwidth_MBps");
  fig.paperExpectation(
      "the added library call extends PWW's sustained bandwidth toward "
      "the Poll curve's high-availability region");

  auto pollS = makeParametricSeries(
      "Poll", poll, [](const PollingPoint& p) { return p.availability; },
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  auto pwwS = makeParametricSeries(
      "PWW", pww, [](const PwwPoint& p) { return p.availability; },
      [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });
  auto pwwTestS = makeParametricSeries(
      "PWW + Test", pwwTest, [](const PwwPoint& p) { return p.availability; },
      [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });

  std::vector<report::ShapeCheck> checks;
  // The paper's claim: the added call "extend[s] the maximum sustained
  // bandwidth into higher CPU availabilities". Measure the highest
  // availability at which each PWW variant still sustains >= 50% of the
  // poll peak; the Test variant must push it substantially further right.
  const double pollPeak = *std::max_element(pollS.ys.begin(), pollS.ys.end());
  auto sustainedUpTo = [&](const report::Series& s) {
    double best = 0.0;
    for (std::size_t i = 0; i < s.xs.size(); ++i)
      if (s.ys[i] >= 0.5 * pollPeak) best = std::max(best, s.xs[i]);
    return best;
  };
  const double plainReach = sustainedUpTo(pwwS);
  const double testReach = sustainedUpTo(pwwTestS);
  checks.push_back(report::ShapeCheck{
      "MPI_Test extends sustained bandwidth to higher availability",
      testReach >= plainReach + 0.2,
      strFormat("half-peak sustained to avail %.2f (plain) vs %.2f (+Test)",
                plainReach, testReach)});
  // PWW+Test should sustain high bandwidth at high availability.
  checks.push_back(report::checkCoexists(
      "PWW+Test: >=60% of poll peak at availability >= 0.8",
      std::vector<double>(pwwTestS.xs.begin(), pwwTestS.xs.end()),
      pwwTestS.ys, 0.8, 0.6 * pollPeak));
  fig.addSeries(std::move(pollS));
  fig.addSeries(std::move(pwwTestS));
  fig.addSeries(std::move(pwwS));
  FigArchive archive("fig17_mpi_test_effect", args);
  archive.addPolling("polling/gm/100 KB", backend::gmMachine(),
                     pollIntervals, pollRuns);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), workIntervals,
                 pwwRuns);
  archive.addPww("pww+test/gm/100 KB", backend::gmMachine(), workIntervals,
                 pwwTestRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
