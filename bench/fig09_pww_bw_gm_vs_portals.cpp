// Figure 9 — PWW method: bandwidth, GM vs Portals (100 KB).
//
// Paper: "the performance of GM [is] significantly better than Portals
// for smaller work intervals"; both decay as the work interval dominates
// the cycle.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig09", "PWW method: bandwidth, GM vs Portals (100 KB)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = presets::workSweep(args.pointsPerDecade);
  const auto spec = sweepOver(presets::pwwBase(100_KB), intervals);
  const auto gmRuns =
      runPwwSweepReps(backend::gmMachine(), spec, args.runOptions());
  const auto portalsRuns =
      runPwwSweepReps(backend::portalsMachine(), spec, args.runOptions());
  const auto gm = canonicalPoints(gmRuns);
  const auto portals = canonicalPoints(portalsRuns);

  report::Figure fig("fig09", "PWW Method: Bandwidth, GM vs Portals",
                     "work_interval_iters", "bandwidth_MBps");
  fig.logX().paperExpectation(
      "GM well above Portals at small work intervals; both decline as the "
      "work interval dominates the cycle");

  auto gmSeries =
      makeSeries("GM", intervals, gm,
                 [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });
  auto ptlSeries =
      makeSeries("Portals", intervals, portals,
                 [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::ShapeCheck{
      "GM > Portals at the smallest work interval",
      gmSeries.ys.front() > 1.2 * ptlSeries.ys.front(),
      strFormat("GM=%.1f Portals=%.1f MB/s", gmSeries.ys.front(),
                ptlSeries.ys.front())});
  checks.push_back(report::checkEndsBelow("GM decays at long work intervals",
                                          gmSeries.ys,
                                          0.25 * gmSeries.ys.front()));
  checks.push_back(report::checkEndsBelow(
      "Portals decays at long work intervals", ptlSeries.ys,
      0.25 * *std::max_element(ptlSeries.ys.begin(), ptlSeries.ys.end())));
  fig.addSeries(std::move(gmSeries));
  fig.addSeries(std::move(ptlSeries));
  FigArchive archive("fig09_pww_bw_gm_vs_portals", args);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), intervals, gmRuns);
  archive.addPww("pww/portals/100 KB", backend::portalsMachine(), intervals,
                 portalsRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
