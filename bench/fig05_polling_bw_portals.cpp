// Figure 5 — Polling method: bandwidth vs poll interval, Portals.
//
// Paper: a plateau of maximum sustained bandwidth followed by a steep
// decline once the poll interval is long enough that every in-flight
// message completes inside it and flow stalls until the next poll.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "fig05",
                   "Polling method: bandwidth vs poll interval (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::portalsMachine();
  const auto fam = runPollingFamily(machine, presets::paperMessageSizes(),
                                    args.pointsPerDecade, args.runOptions());

  report::Figure fig("fig05", "Polling Method: Bandwidth (Portals)",
                     "poll_interval_iters", "bandwidth_MBps");
  fig.logX().paperExpectation(
      "plateau at max sustained bandwidth (~50-60 MB/s for >=50 KB, lower "
      "for 10 KB), then steep decline at large poll intervals; larger "
      "messages hold the plateau longer");

  std::vector<report::ShapeCheck> checks;
  std::vector<double> peak50KBplus;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeSeries(
        sizeLabel(fam.sizes[i]), fam.intervals, fam.results[i],
        [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
    checks.push_back(report::checkPlateauThenDecline(
        "bandwidth plateau then decline (" + s.name + ")", s.ys, 0.2, 0.5));
    if (fam.sizes[i] >= 50 * 1024)
      peak50KBplus.push_back(
          *std::max_element(s.ys.begin(), s.ys.end()));
    fig.addSeries(std::move(s));
  }
  // Portals plateau sits in the paper's 45-65 MB/s band for >= 50 KB.
  for (const double pk : peak50KBplus) {
    report::ShapeCheck c{"plateau in paper band (45-65 MB/s)",
                         pk >= 45.0 && pk <= 65.0,
                         strFormat("peak=%.1f MB/s", pk)};
    checks.push_back(std::move(c));
  }
  FigArchive archive("fig05_polling_bw_portals", args);
  archivePollingFamily(archive, "polling/portals", machine, fam);
  archive.write();
  return finishFigure(fig, checks, args);
}
