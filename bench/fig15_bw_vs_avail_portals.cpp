// Figure 15 — Polling method: bandwidth vs CPU availability, Portals.
//
// Paper: "the Portals communication overhead ... restricts maximum
// sustained bandwidth to the lower ranges of CPU availability" — the
// mirror image of GM's Fig 14.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig15",
      "Polling method: bandwidth vs CPU availability (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::portalsMachine();
  const auto fam = runPollingFamily(machine, presets::paperMessageSizes(),
                                    args.pointsPerDecade + 1, args.runOptions());

  report::Figure fig(
      "fig15", "Polling Method: Bandwidth vs CPU Availability (Portals)",
      "cpu_availability", "bandwidth_MBps");
  fig.paperExpectation(
      "maximum sustained bandwidth exists only at LOW availability "
      "(interrupt + copy overhead); at high availability bandwidth has "
      "collapsed");

  std::vector<report::ShapeCheck> checks;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeParametricSeries(
        sizeLabel(fam.sizes[i]), fam.results[i],
        [](const PollingPoint& p) { return p.availability; },
        [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
    const double peak = *std::max_element(s.ys.begin(), s.ys.end());
    // Peak bandwidth must NOT coexist with high availability...
    auto bad = report::checkCoexists(
        "", std::vector<double>(s.xs.begin(), s.xs.end()), s.ys, 0.6,
        0.8 * peak);
    bad.pass = !bad.pass;
    bad.name = "peak bandwidth confined to low availability (" + s.name + ")";
    checks.push_back(std::move(bad));
    // ...and peak bandwidth must exist at some low-availability point.
    checks.push_back(report::checkCoexists(
        "peak bandwidth present at low availability (" + s.name + ")",
        [&] {
          std::vector<double> inverted;
          for (double a : s.xs) inverted.push_back(1.0 - a);
          return inverted;
        }(),
        s.ys, 0.6 /* i.e. availability <= 0.4 */, 0.9 * peak));
    fig.addSeries(std::move(s));
  }
  FigArchive archive("fig15_bw_vs_avail_portals", args);
  archivePollingFamily(archive, "polling/portals", machine, fam);
  archive.write();
  return finishFigure(fig, checks, args);
}
