// Micro-benchmarks (google-benchmark): the MPI matching engine.
// Matching is on the critical path of every message in every transport.
#include <benchmark/benchmark.h>

#include "mpi/match.hpp"

namespace {

using namespace comb;
using comb::mpi::Envelope;
using comb::mpi::MatchEngine;
using comb::mpi::Pattern;

void BM_PostAndMatchExact(benchmark::State& state) {
  for (auto _ : state) {
    MatchEngine m;
    m.postRecv(Pattern{0, 1, 7}, 1024, 1);
    auto hit = m.matchArrival(Envelope{0, 1, 7});
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PostAndMatchExact);

void BM_MatchScanDepth(benchmark::State& state) {
  // Worst case: arrival matches only the LAST of N posted receives.
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MatchEngine m;
    for (int i = 0; i < depth; ++i)
      m.postRecv(Pattern{0, 1, i}, 1024, static_cast<std::uint64_t>(i + 1));
    state.ResumeTiming();
    auto hit = m.matchArrival(Envelope{0, 1, depth - 1});
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_MatchScanDepth)->Arg(8)->Arg(64)->Arg(512);

void BM_UnexpectedQueueChurn(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  MatchEngine m;
  std::uint64_t id = 1;
  for (auto _ : state) {
    for (int i = 0; i < depth; ++i)
      m.addUnexpected(Envelope{0, 0, i}, 1024, id++);
    for (int i = 0; i < depth; ++i) {
      auto hit = m.matchUnexpected(Pattern{0, 0, i});
      benchmark::DoNotOptimize(hit);
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_UnexpectedQueueChurn)->Arg(8)->Arg(64);

void BM_WildcardMatch(benchmark::State& state) {
  for (auto _ : state) {
    MatchEngine m;
    m.postRecv(Pattern{0, mpi::kAnySource, mpi::kAnyTag}, 1024, 1);
    auto hit = m.matchArrival(Envelope{0, 3, 99});
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_WildcardMatch);

}  // namespace

BENCHMARK_MAIN();
