// Figure 10 — PWW method: average time to post (100 KB), GM vs Portals.
//
// Paper: GM posts a rendezvous descriptor in a few microseconds; a
// Portals post is a syscall plus kernel match-entry setup (plus interrupt
// interference while traffic flows) — roughly 160-180 us. "GM
// significantly outperforms Portals."
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig10", "PWW method: average post time (100 KB)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = presets::workSweep(args.pointsPerDecade);
  const auto spec = sweepOver(presets::pwwBase(100_KB), intervals);
  const auto gmRuns =
      runPwwSweepReps(backend::gmMachine(), spec, args.runOptions());
  const auto portalsRuns =
      runPwwSweepReps(backend::portalsMachine(), spec, args.runOptions());
  const auto gm = canonicalPoints(gmRuns);
  const auto portals = canonicalPoints(portalsRuns);

  report::Figure fig("fig10", "PWW Method: Average Post Time (100 KB)",
                     "work_interval_iters", "time_to_post_us");
  fig.logX().paperExpectation(
      "Portals ~160-180 us per post (syscall + kernel setup), GM a few us "
      "(descriptor write); both roughly flat across work intervals");

  auto gmSeries =
      makeSeries("GM", intervals, gm,
                 [](const PwwPoint& p) { return p.avgPostPerOp * 1e6; });
  auto ptlSeries =
      makeSeries("Portals", intervals, portals,
                 [](const PwwPoint& p) { return p.avgPostPerOp * 1e6; });

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::checkPeakRatio(
      "Portals posts cost >=10x GM posts", ptlSeries.ys, gmSeries.ys, 10.0));
  checks.push_back(report::ShapeCheck{
      "GM post cost is a few microseconds",
      gmSeries.ys.front() > 1.0 && gmSeries.ys.front() < 20.0,
      strFormat("GM=%.1f us", gmSeries.ys.front())});
  checks.push_back(report::ShapeCheck{
      "Portals post cost in paper's order (~100-400 us)",
      ptlSeries.ys.front() > 100.0 && ptlSeries.ys.front() < 400.0,
      strFormat("Portals=%.1f us", ptlSeries.ys.front())});
  fig.addSeries(std::move(gmSeries));
  fig.addSeries(std::move(ptlSeries));
  FigArchive archive("fig10_pww_post_time", args);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), intervals, gmRuns);
  archive.addPww("pww/portals/100 KB", backend::portalsMachine(), intervals,
                 portalsRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
