// Calibration utility: prints the raw COMB measurements for both machine
// models at a few key operating points, so model parameters can be
// compared against the paper's numbers directly.
//
// Not a figure bench — a tool for validating/tuning the presets.
#include <cstdio>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/cli.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace comb;
using namespace comb::units;

namespace {

void pollingTable(const backend::MachineConfig& m, Bytes msgBytes) {
  std::printf("-- polling, %s, %s --\n", m.name.c_str(),
              fmtBytes(msgBytes).c_str());
  TextTable t({"poll_interval", "bandwidth_MBps", "availability", "msgs",
               "polls"});
  for (const std::uint64_t interval :
       {10ull, 1000ull, 100'000ull, 1'000'000ull, 10'000'000ull,
        100'000'000ull}) {
    auto base = bench::presets::pollingBase(msgBytes);
    base.pollInterval = interval;
    const auto pt = bench::runPollingPoint(m, base);
    t.addRow({strFormat("%llu", (unsigned long long)pt.pollInterval),
              strFormat("%.2f", toMBps(pt.bandwidthBps)),
              strFormat("%.3f", pt.availability),
              strFormat("%llu", (unsigned long long)pt.messagesReceived),
              strFormat("%llu", (unsigned long long)pt.pollsExecuted)});
  }
  std::puts(t.str().c_str());
}

void pwwTable(const backend::MachineConfig& m, Bytes msgBytes) {
  std::printf("-- pww, %s, %s --\n", m.name.c_str(),
              fmtBytes(msgBytes).c_str());
  TextTable t({"work_interval", "bandwidth_MBps", "availability", "post_us",
               "work_us", "wait_us", "dry_us"});
  for (const std::uint64_t interval :
       {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull}) {
    auto base = bench::presets::pwwBase(msgBytes);
    base.workInterval = interval;
    const auto pt = bench::runPwwPoint(m, base);
    t.addRow({strFormat("%llu", (unsigned long long)pt.workInterval),
              strFormat("%.2f", toMBps(pt.bandwidthBps)),
              strFormat("%.3f", pt.availability),
              strFormat("%.1f", pt.avgPost * 1e6),
              strFormat("%.1f", pt.avgWork * 1e6),
              strFormat("%.1f", pt.avgWait * 1e6),
              strFormat("%.1f", pt.dryWork * 1e6)});
  }
  std::puts(t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("calibrate", "raw COMB measurements for model calibration");
  args.addOption("size", "message size in KB", "100");
  if (!args.parse(argc, argv)) return 0;
  const Bytes msgBytes = static_cast<Bytes>(args.integer("size")) * 1024;

  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    pollingTable(machine, msgBytes);
    pwwTable(machine, msgBytes);
  }
  return 0;
}
