// Micro-benchmarks (google-benchmark): whole-stack simulation cost —
// wall-clock time to simulate one MPI exchange end to end. This is the
// number that bounds figure-sweep runtimes.
#include <benchmark/benchmark.h>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace {

using namespace comb;
using namespace comb::units;
using sim::Task;

Task<void> pingProc(backend::SimProc& p, int rounds, Bytes bytes) {
  for (int i = 0; i < rounds; ++i) {
    co_await p.mpi().send(p.mpi().world(), 1, 1, bytes);
    co_await p.mpi().recv(p.mpi().world(), 1, 2, bytes);
  }
}

Task<void> pongProc(backend::SimProc& p, int rounds, Bytes bytes) {
  for (int i = 0; i < rounds; ++i) {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, bytes);
    co_await p.mpi().send(p.mpi().world(), 0, 2, bytes);
  }
}

void runPingPong(const backend::MachineConfig& machine, int rounds,
                 Bytes bytes) {
  backend::SimCluster cluster(machine, 2);
  cluster.launch(0, pingProc(cluster.proc(0), rounds, bytes));
  cluster.launch(1, pongProc(cluster.proc(1), rounds, bytes));
  cluster.run();
}

void BM_SimulatedPingPongGm(benchmark::State& state) {
  const auto bytes = static_cast<Bytes>(state.range(0));
  for (auto _ : state) runPingPong(backend::gmMachine(), 10, bytes);
  state.SetItemsProcessed(state.iterations() * 20);  // messages simulated
}
BENCHMARK(BM_SimulatedPingPongGm)->Arg(1024)->Arg(102400);

void BM_SimulatedPingPongPortals(benchmark::State& state) {
  const auto bytes = static_cast<Bytes>(state.range(0));
  for (auto _ : state) runPingPong(backend::portalsMachine(), 10, bytes);
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_SimulatedPingPongPortals)->Arg(1024)->Arg(102400);

void BM_ClusterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    backend::SimCluster cluster(backend::gmMachine(), 2);
    benchmark::DoNotOptimize(cluster.nodeCount());
  }
}
BENCHMARK(BM_ClusterConstruction);

}  // namespace

BENCHMARK_MAIN();
