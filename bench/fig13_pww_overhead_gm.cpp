// Figure 13 — PWW method: CPU overhead, GM.
//
// Paper: for GM the two lines coincide — "virtually no communication
// overhead in that the time to do work is the same regardless of the
// presence or absence of communication". (Message handling is blocked
// during the PWW work phase and GM raises no interrupts, so nothing can
// steal application cycles.)
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

std::vector<std::uint64_t> linearSweep() {
  std::vector<std::uint64_t> xs;
  for (std::uint64_t v = 50'000; v <= 500'000; v += 50'000) xs.push_back(v);
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "fig13", "PWW method: CPU overhead (GM)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = linearSweep();
  const auto runs =
      runPwwSweepReps(backend::gmMachine(),
                      sweepOver(presets::pwwBase(100_KB), intervals),
                      args.runOptions());
  const auto pts = canonicalPoints(runs);

  report::Figure fig("fig13", "PWW Method: CPU Overhead (GM)",
                     "work_interval_iters", "work_phase_us");
  fig.paperExpectation(
      "'Work with MH' and 'Work Only' coincide: OS-bypass GM steals no "
      "application cycles during the work phase");

  auto withMh = makeSeries("Work with MH", intervals, pts,
                           [](const PwwPoint& p) { return p.avgWork * 1e6; });
  auto workOnly = makeSeries("Work Only", intervals, pts,
                             [](const PwwPoint& p) { return p.dryWork * 1e6; });

  std::vector<report::ShapeCheck> checks;
  double maxRelGap = 0;
  for (std::size_t i = 0; i < withMh.ys.size(); ++i) {
    maxRelGap = std::max(
        maxRelGap, std::abs(withMh.ys[i] - workOnly.ys[i]) / workOnly.ys[i]);
  }
  checks.push_back(report::ShapeCheck{
      "work phase identical with and without messaging (<1% gap)",
      maxRelGap < 0.01, strFormat("max relative gap %.3f%%", 100 * maxRelGap)});
  fig.addSeries(std::move(withMh));
  fig.addSeries(std::move(workOnly));

  FigArchive archive("fig13_pww_overhead_gm", args);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), intervals, runs);
  archive.write();

  // --trace: re-run the middle sweep point fully traced, export, audit.
  auto traced = presets::pwwBase(100_KB);
  traced.workInterval = intervals[intervals.size() / 2];
  const bool traceOk = maybeTracePww(backend::gmMachine(), traced, args);

  const int rc = finishFigure(fig, checks, args);
  return traceOk ? rc : std::max(rc, 1);
}
