// Extension — OS-noise tail sweep: what background daemons do to the
// per-message latency distribution.
//
// Sweeps the mean daemon burst length at a fixed wakeup period on both
// machine models and plots availability plus the merged receive-latency
// percentiles. Expected shape (see EXPERIMENTS.md): the p999 receive
// latency stretches with the burst length while the median barely moves
// — noise preempts the host mid-progress, so a small fraction of
// messages absorb the whole burst and the rest are untouched. That is
// precisely the signature `comb compare --metric-class tail` gates on:
// a mean-based gate would pass these runs unchanged.
//
// Daemon schedules are a pure function of (seed, node, cpu), so every
// point is bit-reproducible for any --jobs value; the bench verifies
// the tail fields survive that round trip too.
#include "fig_common.hpp"

#include <algorithm>

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

PollingParams noisePollingBase() {
  auto p = presets::pollingBase(100_KB);
  p.pollInterval = 30'000;
  p.targetDuration = 20e-3;
  p.maxPolls = 20'000;
  return p;
}

std::vector<RepRun<PollingPoint>> noiseSweep(
    const backend::MachineConfig& machine,
    const std::vector<std::uint64_t>& burstsUs, const host::NoiseSpec& tmpl,
    const FigArgs& args, int jobs) {
  const auto base = noisePollingBase();
  return runSweepParallel(
      machine, burstsUs,
      [&](const backend::MachineConfig& m, const std::uint64_t burstUs) {
        RunOptions opts = args.runOptions();
        opts.jobs = 1;  // outer sweep already fans out
        host::NoiseSpec spec = tmpl;
        spec.duration = static_cast<double>(burstUs) * 1e-6;
        // burst 0 = the quiet baseline: NoiseSpec{duration: 0} disables
        // the daemon model entirely, so point 0 doubles as the control.
        opts.noise = spec;
        return runPollingPointReps(m, base, opts);
      },
      jobs);
}

bool sameTail(const TailSummary& a, const TailSummary& b) {
  return a.count == b.count && a.mean == b.mean && a.min == b.min &&
         a.max == b.max && a.p50 == b.p50 && a.p90 == b.p90 &&
         a.p99 == b.p99 && a.p999 == b.p999;
}

bool samePoint(const PollingPoint& a, const PollingPoint& b) {
  return a.availability == b.availability &&
         a.bandwidthBps == b.bandwidthBps && a.liveTime == b.liveTime &&
         a.messagesReceived == b.messagesReceived &&
         a.shardImbalance == b.shardImbalance &&
         sameTail(a.sendTail, b.sendTail) && sameTail(a.recvTail, b.recvTail);
}

template <typename F>
report::Series burstSeries(const std::string& name,
                           const std::vector<std::uint64_t>& burstsUs,
                           const std::vector<PollingPoint>& pts, F&& yOf) {
  report::Series s;
  s.name = name;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.xs.push_back(static_cast<double>(burstsUs[i]));
    s.ys.push_back(yOf(pts[i]));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "ext_noise_tail",
      "receive-latency tail and availability vs OS-noise burst length, "
      "GM vs Portals");
  if (!args.parsedOk) return args.exitCode;

  // Mean daemon burst in microseconds; 0 is the noise-free control.
  const std::vector<std::uint64_t> burstsUs{0, 2, 5, 10, 20};
  // --noise supplies the non-swept knobs (period, daemons, jitter,
  // coalesce, seed); the burst length itself is the swept axis.
  host::NoiseSpec tmpl;
  tmpl.period = 250e-6;
  tmpl.daemons = 2;
  if (args.noise) tmpl = *args.noise;

  const auto gmReps =
      noiseSweep(backend::gmMachine(), burstsUs, tmpl, args, args.jobs);
  const auto ptlReps =
      noiseSweep(backend::portalsMachine(), burstsUs, tmpl, args, args.jobs);
  // Re-run one sweep serially: a parallel schedule must not change bits —
  // including the latency-distribution fields.
  const auto gmSerial =
      noiseSweep(backend::gmMachine(), burstsUs, tmpl, args, 1);

  const auto gm = canonicalPoints(gmReps);
  const auto portals = canonicalPoints(ptlReps);

  const auto availOf = [](const PollingPoint& p) { return p.availability; };
  const auto p50Of = [](const PollingPoint& p) { return p.recvTail.p50 * 1e6; };
  const auto p999Of = [](const PollingPoint& p) {
    return p.recvTail.p999 * 1e6;
  };

  report::Figure availFig("ext_noise_avail",
                          "Extension: Availability vs OS-Noise Burst",
                          "noise_burst_us", "availability");
  availFig.paperExpectation(
      "availability barely moves: bursts preempt the compute loop and "
      "the progress loop alike, so the live fraction holds while the "
      "latency tail (below) stretches — noise hides from mean-based "
      "metrics");
  availFig.addSeries(burstSeries("GM", burstsUs, gm, availOf));
  availFig.addSeries(burstSeries("Portals", burstsUs, portals, availOf));
  availFig.render(std::cout);
  if (args.csv)
    std::cout << "csv: " << availFig.writeCsvFile(args.outDir) << '\n';

  report::Figure fig("ext_noise_tail",
                     "Extension: Receive-Latency Tail vs OS-Noise Burst",
                     "noise_burst_us", "recv_latency_us");
  fig.paperExpectation(
      "p999 receive latency stretches with the daemon burst while the "
      "median stays near the quiet baseline: noise is a tail "
      "phenomenon, invisible to mean-based gating");
  auto gmP50 = burstSeries("GM p50", burstsUs, gm, p50Of);
  auto gmP999 = burstSeries("GM p999", burstsUs, gm, p999Of);
  auto ptlP50 = burstSeries("Portals p50", burstsUs, portals, p50Of);
  auto ptlP999 = burstSeries("Portals p999", burstsUs, portals, p999Of);

  std::vector<report::ShapeCheck> checks;

  bool availInRange = true, tailsPopulated = true;
  for (const auto* pts : {&gm, &portals})
    for (const auto& p : *pts) {
      availInRange =
          availInRange && p.availability >= 0.0 && p.availability <= 1.0;
      tailsPopulated = tailsPopulated && p.recvTail.count > 0 &&
                       p.sendTail.count > 0;
    }
  checks.push_back(
      report::ShapeCheck{"availability within [0, 1]", availInRange, ""});
  checks.push_back(report::ShapeCheck{
      "every point recorded send and recv latency samples", tailsPopulated,
      ""});

  // The headline shape: the noisiest point's p999 sits above the quiet
  // baseline's on both stacks.
  const bool p999Grows =
      gmP999.ys.back() > gmP999.ys.front() &&
      ptlP999.ys.back() > ptlP999.ys.front();
  checks.push_back(report::ShapeCheck{
      "p999 recv latency grows with noise burst on both stacks", p999Grows,
      strFormat("GM %.1f -> %.1f us, Portals %.1f -> %.1f us",
                gmP999.ys.front(), gmP999.ys.back(), ptlP999.ys.front(),
                ptlP999.ys.back())});

  // Tail-dominance: the absolute p999 stretch exceeds the median's on
  // both stacks — the distribution widened, it did not shift.
  const double gmTailStretch = gmP999.ys.back() - gmP999.ys.front();
  const double gmMedStretch = std::abs(gmP50.ys.back() - gmP50.ys.front());
  const double ptlTailStretch = ptlP999.ys.back() - ptlP999.ys.front();
  const double ptlMedStretch = std::abs(ptlP50.ys.back() - ptlP50.ys.front());
  checks.push_back(report::ShapeCheck{
      "tail stretches more than the median under noise",
      gmTailStretch >= gmMedStretch && ptlTailStretch >= ptlMedStretch,
      strFormat("GM tail +%.1f us vs median %+.1f us; "
                "Portals tail +%.1f us vs median %+.1f us",
                gmTailStretch, gmP50.ys.back() - gmP50.ys.front(),
                ptlTailStretch, ptlP50.ys.back() - ptlP50.ys.front())});

  bool bitIdentical = gmSerial.size() == gmReps.size();
  for (std::size_t i = 0; bitIdentical && i < gmReps.size(); ++i)
    bitIdentical = samePoint(gmReps[i].canonical(), gmSerial[i].canonical());
  checks.push_back(report::ShapeCheck{
      strFormat("bit-identical results (incl. tails) for --jobs 1 vs "
                "--jobs %d",
                args.jobs),
      bitIdentical, ""});

  FigArchive archive("ext_noise_tail", args);
  archive.addPolling("noise/gm", backend::gmMachine(), burstsUs, gmReps);
  archive.addPolling("noise/portals", backend::portalsMachine(), burstsUs,
                     ptlReps);
  archive.write();

  fig.addSeries(std::move(gmP50));
  fig.addSeries(std::move(gmP999));
  fig.addSeries(std::move(ptlP50));
  fig.addSeries(std::move(ptlP999));
  return finishFigure(fig, checks, args);
}
