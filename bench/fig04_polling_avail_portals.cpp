// Figure 4 — Polling method: CPU availability vs poll interval, Portals.
//
// Paper: availability "remains low and relatively stable until it rises
// steeply" — frequent polling keeps the interrupt-driven kernel stack hot
// (availability ~0.1); once polls are sparse enough to stall the message
// flow, interrupts stop and availability climbs toward 1.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig04",
      "Polling method: CPU availability vs poll interval (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::portalsMachine();
  const auto fam = runPollingFamily(machine, presets::paperMessageSizes(),
                                    args.pointsPerDecade, args.runOptions());

  report::Figure fig("fig04",
                     "Polling Method: CPU Availability (Portals)",
                     "poll_interval_iters", "cpu_availability");
  fig.logX().yRange(0.0, 1.0).paperExpectation(
      "low stable availability (~0.05-0.2) while messages flow, then a "
      "steep rise toward 1 once the poll interval stalls the flow");

  std::vector<report::ShapeCheck> checks;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeSeries(sizeLabel(fam.sizes[i]), fam.intervals,
                        fam.results[i],
                        [](const PollingPoint& p) { return p.availability; });
    checks.push_back(report::checkRisesFromLowToHigh(
        "availability rises low->high (" + s.name + ")", s.ys, 0.25, 0.9));
    checks.push_back(report::checkNearlyMonotone(
        "availability ~monotone in poll interval (" + s.name + ")", s.ys,
        /*increasing=*/true, 0.08));
    fig.addSeries(std::move(s));
  }

  FigArchive archive("fig04_polling_avail_portals", args);
  archivePollingFamily(archive, "polling/portals", machine, fam);
  archive.write();

  // --trace: re-run the middle sweep point (100KB family) fully traced.
  auto traced = presets::pollingBase(presets::paperMessageSizes().back());
  traced.pollInterval = fam.intervals[fam.intervals.size() / 2];
  const bool traceOk = maybeTracePolling(machine, traced, args);

  const int rc = finishFigure(fig, checks, args);
  return traceOk ? rc : std::max(rc, 1);
}
