// Ablation — polling-method queue depth.
//
// Paper §2.1: "The polling method uses a queue of messages at each node
// in order to maximize achievable bandwidth. ... When we set the queue
// size to one ... the polling method acts as a standard ping-pong test
// and maximum sustained bandwidth will be sacrificed."
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(argc, argv, "ablate_queue_depth",
                                    "polling bandwidth vs queue depth");
  if (!args.parsedOk) return args.exitCode;

  report::Figure fig("ablate_queue_depth",
                     "Ablation: Polling Bandwidth vs Queue Depth (100 KB)",
                     "queue_depth", "bandwidth_MBps");
  fig.paperExpectation(
      "depth 1 degenerates to ping-pong (bandwidth sacrificed); a modest "
      "queue recovers the sustained plateau");

  std::vector<report::ShapeCheck> checks;
  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    report::Series s;
    s.name = machine.name;
    for (const int q : {1, 2, 4, 8, 16}) {
      auto base = presets::pollingBase(100_KB);
      base.queueDepth = q;
      base.pollInterval = 10'000;
      const auto pt = runPollingPoint(machine, base);
      s.xs.push_back(q);
      s.ys.push_back(toMBps(pt.bandwidthBps));
    }
    checks.push_back(report::ShapeCheck{
        "depth 1 sacrifices bandwidth vs depth 8 (" + s.name + ")",
        s.ys.front() < 0.8 * s.ys[3],
        strFormat("q1=%.1f q8=%.1f MB/s", s.ys.front(), s.ys[3])});
    checks.push_back(report::checkNearlyMonotone(
        "bandwidth non-decreasing in depth (" + s.name + ")", s.ys, true,
        2.0));
    fig.addSeries(std::move(s));
  }
  return finishFigure(fig, checks, args);
}
