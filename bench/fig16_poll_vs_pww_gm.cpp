// Figure 16 — Polling and PWW methods: bandwidth vs availability, GM
// (100 KB).
//
// Paper: the Polling curve holds peak bandwidth across nearly the whole
// availability range; the PWW curve cannot — without application offload,
// restricting MPI calls (large work intervals = high availability) chokes
// bandwidth, so PWW bandwidth decays as availability rises.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig16",
      "Polling + PWW: bandwidth vs availability, GM (100 KB)");
  if (!args.parsedOk) return args.exitCode;

  const auto pollIntervals = presets::pollSweep(args.pointsPerDecade + 1);
  const auto workIntervals = presets::workSweep(args.pointsPerDecade + 1);
  const auto pollRuns = runPollingSweepReps(
      backend::gmMachine(),
      sweepOver(presets::pollingBase(100_KB), pollIntervals),
      args.runOptions());
  const auto pwwRuns = runPwwSweepReps(
      backend::gmMachine(),
      sweepOver(presets::pwwBase(100_KB), workIntervals), args.runOptions());
  const auto poll = canonicalPoints(pollRuns);
  const auto pww = canonicalPoints(pwwRuns);

  report::Figure fig("fig16",
                     "Polling and PWW: Bandwidth vs Availability (GM)",
                     "cpu_availability", "bandwidth_MBps");
  fig.paperExpectation(
      "Poll curve: ~88 MB/s out to availability ~0.95+; PWW curve: "
      "bandwidth decays with availability (no application offload)");

  auto pollS = makeParametricSeries(
      "Poll", poll, [](const PollingPoint& p) { return p.availability; },
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  auto pwwS = makeParametricSeries(
      "PWW", pww, [](const PwwPoint& p) { return p.availability; },
      [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });

  std::vector<report::ShapeCheck> checks;
  const double pollPeak = *std::max_element(pollS.ys.begin(), pollS.ys.end());
  checks.push_back(report::checkCoexists(
      "Poll: peak bandwidth at availability >= 0.9",
      std::vector<double>(pollS.xs.begin(), pollS.xs.end()), pollS.ys, 0.9,
      0.85 * pollPeak));
  {
    // PWW: at availability >= 0.7 bandwidth must have collapsed.
    double worst = 0.0;
    for (std::size_t i = 0; i < pwwS.xs.size(); ++i)
      if (pwwS.xs[i] >= 0.7) worst = std::max(worst, pwwS.ys[i]);
    checks.push_back(report::ShapeCheck{
        "PWW: bandwidth collapsed at high availability",
        worst < 0.5 * pollPeak,
        strFormat("max PWW bw at avail>=0.7: %.1f MB/s (poll peak %.1f)",
                  worst, pollPeak)});
  }
  fig.addSeries(std::move(pollS));
  fig.addSeries(std::move(pwwS));
  FigArchive archive("fig16_poll_vs_pww_gm", args);
  archive.addPolling("polling/gm/100 KB", backend::gmMachine(),
                     pollIntervals, pollRuns);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), workIntervals,
                 pwwRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
