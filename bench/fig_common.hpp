// Shared scaffolding for the per-figure bench binaries.
//
// Every figure bench:
//   * runs the relevant COMB sweeps on the simulated machine(s),
//   * prints the figure as an ASCII plot + data table,
//   * evaluates the paper's shape expectations (PASS/FAIL lines),
//   * optionally writes CSV (--csv [--out DIR]),
//   * exits non-zero if a shape expectation fails.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "comb/audit.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "report/expectations.hpp"
#include "report/figure.hpp"
#include "report/trace_export.hpp"

namespace comb::bench {

struct FigArgs {
  int pointsPerDecade = 2;
  /// Worker threads for sweep points; defaults to all hardware threads.
  /// Results are bit-identical for any value (per-point isolation).
  int jobs = 1;
  /// Fault model override from --fault (per-point results stay
  /// bit-reproducible: link fault streams are seeded per link name).
  std::optional<net::FaultSpec> fault;
  bool csv = false;
  std::string outDir = "bench_out";
  /// When non-empty (--trace FILE): re-run one representative sweep point
  /// with full tracing, write the Chrome trace JSON here, and audit the
  /// timeline against the reported numbers.
  std::string traceFile;
  bool parsedOk = true;  ///< false => exit with exitCode without running
  int exitCode = 0;      ///< 0 after --help, 2 on invalid arguments

  /// The sweep-execution options these args describe.
  RunOptions runOptions() const {
    RunOptions opts;
    opts.jobs = jobs;
    opts.fault = fault;
    return opts;
  }
};

/// Parse and *validate* the common figure-bench arguments. Bad values
/// (non-numeric, --points-per-decade < 1, --jobs < 1, malformed --fault)
/// are reported on stderr at parse time with parsedOk=false / exitCode=2,
/// instead of failing later inside the sweep.
inline FigArgs parseFigArgs(int argc, const char* const* argv,
                            const std::string& name,
                            const std::string& description) {
  ArgParser parser(name, description);
  parser.addFlag("csv", "also write the series as CSV");
  parser.addOption("out", "directory for CSV output", "bench_out");
  parser.addOption("points-per-decade", "sweep density on log axes", "2");
  parser.addOption("jobs",
                   "worker threads for sweep points (results are "
                   "bit-identical for any value)",
                   std::to_string(hardwareJobs()));
  parser.addOption("fault",
                   "inject link faults, e.g. drop=0.01,burst=4,seed=7 "
                   "(keys: drop, burst, corrupt, jitter_us, seed)",
                   "");
  parser.addOption("trace",
                   "write a Chrome trace JSON of one representative point "
                   "to FILE and audit it against the reported stats",
                   "");
  FigArgs args;
  args.jobs = hardwareJobs();
  try {
    if (!parser.parse(argc, argv)) {
      args.parsedOk = false;  // --help printed; exit 0
      return args;
    }
    args.pointsPerDecade =
        static_cast<int>(parser.integer("points-per-decade"));
    if (args.pointsPerDecade < 1)
      throw ConfigError("--points-per-decade must be >= 1, got " +
                        parser.str("points-per-decade"));
    args.jobs = static_cast<int>(parser.integer("jobs"));
    if (args.jobs < 1)
      throw ConfigError("--jobs must be >= 1, got " + parser.str("jobs"));
    if (const auto spec = parser.str("fault"); !spec.empty())
      args.fault = net::parseFaultSpec(spec);
    args.csv = parser.flag("csv");
    args.outDir = parser.str("out");
    args.traceFile = parser.str("trace");
    if (!args.traceFile.empty()) {
      // Fail at parse time, not after minutes of sweeping: the trace file
      // must be writable now.
      std::ofstream probe(args.traceFile);
      if (!probe)
        throw ConfigError("--trace: cannot open '" + args.traceFile +
                          "' for writing");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    args.parsedOk = false;
    args.exitCode = 2;
  }
  return args;
}

inline std::string sizeLabel(Bytes b) { return fmtBytes(b); }

/// Render + checks + optional CSV. Returns process exit code.
inline int finishFigure(const report::Figure& fig,
                        const std::vector<report::ShapeCheck>& checks,
                        const FigArgs& args) {
  fig.render(std::cout);
  bool ok = true;
  if (!checks.empty()) {
    std::cout << "shape expectations vs the paper:\n";
    ok = report::reportChecks(std::cout, checks);
    std::cout << '\n';
  }
  if (args.csv) {
    const auto path = fig.writeCsvFile(args.outDir);
    std::cout << "csv: " << path << '\n';
  }
  return ok ? 0 : 1;
}

/// Convenience: polling sweeps per message size, returning both the
/// availability and bandwidth views (many figures want one or the other).
struct PollingFamily {
  std::vector<Bytes> sizes;
  std::vector<std::uint64_t> intervals;
  // results[size][point]
  std::vector<std::vector<PollingPoint>> results;
};

inline PollingFamily runPollingFamily(const backend::MachineConfig& machine,
                                      const std::vector<Bytes>& sizes,
                                      int pointsPerDecade,
                                      const RunOptions& opts = {}) {
  PollingFamily fam;
  fam.sizes = sizes;
  fam.intervals = presets::pollSweep(pointsPerDecade);
  for (const Bytes size : sizes) {
    fam.results.push_back(runPollingSweep(
        machine, sweepOver(presets::pollingBase(size), fam.intervals), opts));
  }
  return fam;
}

struct PwwFamily {
  std::vector<Bytes> sizes;
  std::vector<std::uint64_t> intervals;
  std::vector<std::vector<PwwPoint>> results;
};

inline PwwFamily runPwwFamily(const backend::MachineConfig& machine,
                              const std::vector<Bytes>& sizes,
                              int pointsPerDecade,
                              double testCallAtFraction = -1.0,
                              const RunOptions& opts = {}) {
  PwwFamily fam;
  fam.sizes = sizes;
  fam.intervals = presets::workSweep(pointsPerDecade);
  for (const Bytes size : sizes) {
    auto base = presets::pwwBase(size);
    base.testCallAtFraction = testCallAtFraction;
    fam.results.push_back(
        runPwwSweep(machine, sweepOver(base, fam.intervals), opts));
  }
  return fam;
}

template <typename Point, typename F>
report::Series makeSeries(const std::string& name,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<Point>& points, F&& yOf) {
  report::Series s;
  s.name = name;
  for (std::size_t i = 0; i < points.size(); ++i) {
    s.xs.push_back(static_cast<double>(xs[i]));
    s.ys.push_back(yOf(points[i]));
  }
  return s;
}

namespace detail {

/// Export + audit one traced run. Returns true when the audited numbers
/// match `auditErr`'s reported point (empty error string).
template <typename Point>
bool finishTrace(const TracedRun<Point>& run, const std::string& auditErr,
                 double auditedAvailability, const FigArgs& args) {
  std::ofstream out(args.traceFile);
  if (!out) {
    std::fprintf(stderr, "--trace: cannot open '%s' for writing\n",
                 args.traceFile.c_str());
    return false;
  }
  report::writeChromeTrace(out, *run.trace);
  std::cout << "trace: wrote " << run.trace->size() << " record(s) to "
            << args.traceFile << " [" << run.trace->summary() << "]\n";
  if (!auditErr.empty()) {
    std::cout << "trace audit: FAIL — " << auditErr << '\n';
    return false;
  }
  std::cout << strFormat(
      "trace audit: OK — availability %.4f and per-phase times reproduced "
      "from span data within 1%%\n",
      auditedAvailability);
  return true;
}

}  // namespace detail

/// --trace support for PWW figures: re-run the representative point (by
/// convention the middle of the sweep) fully traced, export the Chrome
/// JSON, and audit the timeline against the runner-reported stats.
/// Returns true when no tracing was requested or the audit passed.
inline bool maybeTracePww(const backend::MachineConfig& machine,
                          const PwwParams& params, const FigArgs& args) {
  if (args.traceFile.empty()) return true;
  const auto run = runPwwPointTraced(machine, params, args.runOptions());
  const auto audit = auditPww(*run.trace, 0);
  return detail::finishTrace(run, checkPww(audit, run.point),
                             audit.availability, args);
}

/// --trace support for polling figures (same contract as maybeTracePww).
inline bool maybeTracePolling(const backend::MachineConfig& machine,
                              const PollingParams& params,
                              const FigArgs& args) {
  if (args.traceFile.empty()) return true;
  const auto run = runPollingPointTraced(machine, params, args.runOptions());
  const auto audit = auditPolling(*run.trace, 0);
  return detail::finishTrace(run, checkPolling(audit, run.point),
                             audit.availability, args);
}

/// Parametric (x = one metric, y = another) series, e.g. bandwidth vs
/// availability for Figs 14-17.
template <typename Point, typename FX, typename FY>
report::Series makeParametricSeries(const std::string& name,
                                    const std::vector<Point>& points, FX&& xOf,
                                    FY&& yOf) {
  report::Series s;
  s.name = name;
  for (const auto& p : points) {
    s.xs.push_back(xOf(p));
    s.ys.push_back(yOf(p));
  }
  return s;
}

}  // namespace comb::bench
