// Shared scaffolding for the per-figure bench binaries.
//
// Every figure bench:
//   * runs the relevant COMB sweeps on the simulated machine(s),
//   * prints the figure as an ASCII plot + data table,
//   * evaluates the paper's shape expectations (PASS/FAIL lines),
//   * optionally writes CSV (--csv [--out DIR]),
//   * exits non-zero if a shape expectation fails.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "comb/archive_build.hpp"
#include "comb/audit.hpp"
#include "comb/congestion.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "host/noise.hpp"
#include "net/fault.hpp"
#include "report/expectations.hpp"
#include "report/figure.hpp"
#include "report/trace_export.hpp"

namespace comb::bench {

struct FigArgs {
  int pointsPerDecade = 2;
  /// Worker threads for sweep points; defaults to all hardware threads.
  /// Results are bit-identical for any value (per-point isolation).
  int jobs = 1;
  /// Simulator-core shards per cluster (--sim-jobs). Part of the run's
  /// configuration identity: 1 is the classic serial core; N > 1 shards
  /// the event queue (deterministic for a fixed value, but a *different*
  /// configuration — archives record it so `comb compare` can flag
  /// cross-configuration comparisons).
  int simJobs = 1;
  /// Shard-worker pinning policy (--sim-affinity). Wall time only —
  /// results are identical across policies — but stamped into archives.
  sim::AffinityPolicy simAffinity = sim::AffinityPolicy::None;
  /// Fault model override from --fault (per-point results stay
  /// bit-reproducible: link fault streams are seeded per link name).
  std::optional<net::FaultSpec> fault;
  /// OS-noise override from --noise (bit-reproducible: daemon schedules
  /// are seeded per (seed, node, cpu)).
  std::optional<host::NoiseSpec> noise;
  bool csv = false;
  std::string outDir = "bench_out";
  /// When non-empty (--trace FILE): re-run one representative sweep point
  /// with full tracing, write the Chrome trace JSON here, and audit the
  /// timeline against the reported numbers.
  std::string traceFile;
  /// Repetition policy (--reps / --reps-auto / --ci-target / --max-reps /
  /// --seed). Figures always plot the canonical rep-0 point; extra reps
  /// only feed the result archive.
  RepPolicy rep;
  /// When non-empty (--archive DIR): write a result archive (per-rep
  /// samples + provenance) next to the CSVs for `comb compare`.
  std::string archiveDir;
  bool parsedOk = true;  ///< false => exit with exitCode without running
  int exitCode = 0;      ///< 0 after --help, 2 on invalid arguments

  /// The sweep-execution options these args describe.
  RunOptions runOptions() const {
    RunOptions opts;
    opts.jobs = jobs;
    opts.simJobs = simJobs;
    opts.simAffinity = simAffinity;
    opts.fault = fault;
    opts.noise = noise;
    opts.rep = rep;
    return opts;
  }
};

/// Parse and *validate* the common figure-bench arguments. Bad values
/// (non-numeric, --points-per-decade < 1, --jobs < 1, --sim-jobs < 1,
/// unknown --sim-affinity, malformed --fault)
/// are reported on stderr at parse time with parsedOk=false / exitCode=2,
/// instead of failing later inside the sweep.
inline FigArgs parseFigArgs(int argc, const char* const* argv,
                            const std::string& name,
                            const std::string& description) {
  ArgParser parser(name, description);
  parser.addFlag("csv", "also write the series as CSV");
  parser.addOption("out", "directory for CSV output", "bench_out");
  parser.addOption("points-per-decade", "sweep density on log axes", "2");
  parser.addOption("jobs",
                   "worker threads for sweep points (results are "
                   "bit-identical for any value)",
                   std::to_string(hardwareJobs()));
  parser.addOption("sim-jobs",
                   "simulator-core shards per cluster (1 = classic serial "
                   "core; N > 1 is a distinct, deterministic configuration "
                   "recorded in archives)",
                   "1");
  parser.addOption("sim-affinity",
                   "shard-worker pinning: none | compact | scatter (wall "
                   "time only — results are identical across policies)",
                   "none");
  parser.addOption("fault",
                   "inject link faults, e.g. drop=0.01,burst=4,seed=7 "
                   "(keys: drop, burst, corrupt, jitter_us, seed)",
                   "");
  parser.addOption("noise",
                   "inject OS noise on every host CPU, e.g. "
                   "period_us=250,duration_us=20 (keys: period_us, "
                   "duration_us, jitter, daemons, coalesce_us, seed)",
                   "");
  parser.addOption("trace",
                   "write a Chrome trace JSON of one representative point "
                   "to FILE and audit it against the reported stats",
                   "");
  parser.addOption("reps", "repetitions per measurement point", "1");
  parser.addFlag("reps-auto",
                 "adaptive reps: run until the relative CI half-width of "
                 "the bandwidth reaches --ci-target (or --max-reps)");
  parser.addOption("ci-target", "relative CI half-width to stop at", "0.05");
  parser.addOption("max-reps", "rep budget for --reps-auto", "20");
  parser.addOption("seed",
                   "root seed for per-rep fault streams + bootstrap",
                   "49227");
  parser.addOption("archive",
                   "write a result archive (per-rep samples, provenance) "
                   "into DIR for `comb compare`",
                   "");
  FigArgs args;
  args.jobs = hardwareJobs();
  try {
    if (!parser.parse(argc, argv)) {
      args.parsedOk = false;  // --help printed; exit 0
      return args;
    }
    args.pointsPerDecade =
        static_cast<int>(parser.integer("points-per-decade"));
    if (args.pointsPerDecade < 1)
      throw ConfigError("--points-per-decade must be >= 1, got " +
                        parser.str("points-per-decade"));
    args.jobs = static_cast<int>(parser.integer("jobs"));
    if (args.jobs < 1)
      throw ConfigError("--jobs must be >= 1, got " + parser.str("jobs"));
    args.simJobs = static_cast<int>(parser.integer("sim-jobs"));
    if (args.simJobs < 1)
      throw ConfigError("--sim-jobs must be >= 1, got " +
                        parser.str("sim-jobs"));
    args.simAffinity = sim::parseAffinityPolicy(parser.str("sim-affinity"));
    if (const auto spec = parser.str("fault"); !spec.empty())
      args.fault = net::parseFaultSpec(spec);
    if (const auto spec = parser.str("noise"); !spec.empty())
      args.noise = host::parseNoiseSpec(spec);
    args.csv = parser.flag("csv");
    args.outDir = parser.str("out");
    args.traceFile = parser.str("trace");
    args.rep.reps = static_cast<int>(parser.integer("reps"));
    args.rep.adaptive = parser.flag("reps-auto");
    args.rep.maxReps = static_cast<int>(parser.integer("max-reps"));
    args.rep.minReps = std::min(args.rep.minReps, args.rep.maxReps);
    args.rep.ciTarget = parser.real("ci-target");
    args.rep.seed = static_cast<std::uint64_t>(parser.integer("seed"));
    validateRepPolicy(args.rep);
    args.archiveDir = parser.str("archive");
    if (!args.traceFile.empty()) {
      // Fail at parse time, not after minutes of sweeping: the trace file
      // must be writable now.
      std::ofstream probe(args.traceFile);
      if (!probe)
        throw ConfigError("--trace: cannot open '" + args.traceFile +
                          "' for writing");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    args.parsedOk = false;
    args.exitCode = 2;
  }
  return args;
}

inline std::string sizeLabel(Bytes b) { return fmtBytes(b); }

/// Render + checks + optional CSV. Returns process exit code.
inline int finishFigure(const report::Figure& fig,
                        const std::vector<report::ShapeCheck>& checks,
                        const FigArgs& args) {
  fig.render(std::cout);
  bool ok = true;
  if (!checks.empty()) {
    std::cout << "shape expectations vs the paper:\n";
    ok = report::reportChecks(std::cout, checks);
    std::cout << '\n';
  }
  if (args.csv) {
    const auto path = fig.writeCsvFile(args.outDir);
    std::cout << "csv: " << path << '\n';
  }
  return ok ? 0 : 1;
}

/// The canonical (rep-0) points of a repetition sweep: exactly what a
/// single-rep sweep would have produced, so figures stay byte-identical
/// whatever the rep policy.
template <typename Point>
std::vector<Point> canonicalPoints(const std::vector<RepRun<Point>>& runs) {
  std::vector<Point> points;
  points.reserve(runs.size());
  for (const auto& run : runs) points.push_back(run.canonical());
  return points;
}

/// Accumulates sweeps into a result archive when --archive was given;
/// otherwise every call is a no-op. Typical figure-bench use:
///
///   FigArchive archive("fig05_polling_bw_portals", args);
///   archive.addPolling("polling/portals", machine, fam);
///   archive.write();
class FigArchive {
 public:
  FigArchive(const std::string& bench, const FigArgs& args)
      : dir_(args.archiveDir),
        archive_(makeArchive(bench, args.rep, args.simJobs,
                             args.simAffinity)) {}

  bool enabled() const { return !dir_.empty(); }

  void addPolling(const std::string& id,
                  const backend::MachineConfig& machine,
                  const std::vector<std::uint64_t>& xs,
                  const std::vector<RepRun<PollingPoint>>& runs) {
    if (enabled()) appendPollingSweep(archive_, id, machine, xs, runs);
  }
  void addPww(const std::string& id, const backend::MachineConfig& machine,
              const std::vector<std::uint64_t>& xs,
              const std::vector<RepRun<PwwPoint>>& runs) {
    if (enabled()) appendPwwSweep(archive_, id, machine, xs, runs);
  }
  void addLatency(const std::string& id,
                  const backend::MachineConfig& machine,
                  const std::vector<std::uint64_t>& xs,
                  const std::vector<RepRun<LatencyPoint>>& runs) {
    if (enabled()) appendLatencySweep(archive_, id, machine, xs, runs);
  }
  void addCongestion(const std::string& id,
                     const backend::MachineConfig& machine,
                     const std::vector<std::uint64_t>& xs,
                     const std::vector<RepRun<CongestionPoint>>& runs) {
    if (enabled()) appendCongestionSweep(archive_, id, machine, xs, runs);
  }

  /// Write the archive file (creating the directory) and log its path.
  void write() const {
    if (!enabled()) return;
    std::cout << "archive: " << report::writeArchiveFile(archive_, dir_)
              << '\n';
  }

 private:
  std::string dir_;
  report::Archive archive_;
};

/// Convenience: polling sweeps per message size, returning both the
/// availability and bandwidth views (many figures want one or the other).
/// `repRuns` carries every repetition for the archive; `results` is the
/// canonical rep-0 view the figures plot.
struct PollingFamily {
  std::vector<Bytes> sizes;
  std::vector<std::uint64_t> intervals;
  // results[size][point]
  std::vector<std::vector<PollingPoint>> results;
  std::vector<std::vector<RepRun<PollingPoint>>> repRuns;
};

inline PollingFamily runPollingFamily(const backend::MachineConfig& machine,
                                      const std::vector<Bytes>& sizes,
                                      int pointsPerDecade,
                                      const RunOptions& opts = {}) {
  PollingFamily fam;
  fam.sizes = sizes;
  fam.intervals = presets::pollSweep(pointsPerDecade);
  for (const Bytes size : sizes) {
    fam.repRuns.push_back(runPollingSweepReps(
        machine, sweepOver(presets::pollingBase(size), fam.intervals), opts));
    fam.results.push_back(canonicalPoints(fam.repRuns.back()));
  }
  return fam;
}

/// Archive every per-size sweep of a polling family under
/// `<idPrefix>/<size label>`.
inline void archivePollingFamily(FigArchive& archive,
                                 const std::string& idPrefix,
                                 const backend::MachineConfig& machine,
                                 const PollingFamily& fam) {
  for (std::size_t i = 0; i < fam.sizes.size(); ++i)
    archive.addPolling(idPrefix + "/" + sizeLabel(fam.sizes[i]), machine,
                       fam.intervals, fam.repRuns[i]);
}

struct PwwFamily {
  std::vector<Bytes> sizes;
  std::vector<std::uint64_t> intervals;
  std::vector<std::vector<PwwPoint>> results;
  std::vector<std::vector<RepRun<PwwPoint>>> repRuns;
};

inline PwwFamily runPwwFamily(const backend::MachineConfig& machine,
                              const std::vector<Bytes>& sizes,
                              int pointsPerDecade,
                              double testCallAtFraction = -1.0,
                              const RunOptions& opts = {}) {
  PwwFamily fam;
  fam.sizes = sizes;
  fam.intervals = presets::workSweep(pointsPerDecade);
  for (const Bytes size : sizes) {
    auto base = presets::pwwBase(size);
    base.testCallAtFraction = testCallAtFraction;
    fam.repRuns.push_back(
        runPwwSweepReps(machine, sweepOver(base, fam.intervals), opts));
    fam.results.push_back(canonicalPoints(fam.repRuns.back()));
  }
  return fam;
}

/// Archive every per-size sweep of a PWW family (same contract as
/// archivePollingFamily).
inline void archivePwwFamily(FigArchive& archive, const std::string& idPrefix,
                             const backend::MachineConfig& machine,
                             const PwwFamily& fam) {
  for (std::size_t i = 0; i < fam.sizes.size(); ++i)
    archive.addPww(idPrefix + "/" + sizeLabel(fam.sizes[i]), machine,
                   fam.intervals, fam.repRuns[i]);
}

template <typename Point, typename F>
report::Series makeSeries(const std::string& name,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<Point>& points, F&& yOf) {
  report::Series s;
  s.name = name;
  for (std::size_t i = 0; i < points.size(); ++i) {
    s.xs.push_back(static_cast<double>(xs[i]));
    s.ys.push_back(yOf(points[i]));
  }
  return s;
}

namespace detail {

/// Export + audit one traced run. Returns true when the audited numbers
/// match `auditErr`'s reported point (empty error string).
template <typename Point>
bool finishTrace(const TracedRun<Point>& run, const std::string& auditErr,
                 double auditedAvailability, const FigArgs& args) {
  std::ofstream out(args.traceFile);
  if (!out) {
    std::fprintf(stderr, "--trace: cannot open '%s' for writing\n",
                 args.traceFile.c_str());
    return false;
  }
  report::writeChromeTrace(out, *run.trace);
  std::cout << "trace: wrote " << run.trace->size() << " record(s) to "
            << args.traceFile << " [" << run.trace->summary() << "]\n";
  if (!auditErr.empty()) {
    std::cout << "trace audit: FAIL — " << auditErr << '\n';
    return false;
  }
  std::cout << strFormat(
      "trace audit: OK — availability %.4f and per-phase times reproduced "
      "from span data within 1%%\n",
      auditedAvailability);
  return true;
}

}  // namespace detail

/// --trace support for PWW figures: re-run the representative point (by
/// convention the middle of the sweep) fully traced, export the Chrome
/// JSON, and audit the timeline against the runner-reported stats.
/// Returns true when no tracing was requested or the audit passed.
inline bool maybeTracePww(const backend::MachineConfig& machine,
                          const PwwParams& params, const FigArgs& args) {
  if (args.traceFile.empty()) return true;
  const auto run = runPwwPointTraced(machine, params, args.runOptions());
  const auto audit = auditPww(*run.trace, 0);
  return detail::finishTrace(run, checkPww(audit, run.point),
                             audit.availability, args);
}

/// --trace support for polling figures (same contract as maybeTracePww).
inline bool maybeTracePolling(const backend::MachineConfig& machine,
                              const PollingParams& params,
                              const FigArgs& args) {
  if (args.traceFile.empty()) return true;
  const auto run = runPollingPointTraced(machine, params, args.runOptions());
  const auto audit = auditPolling(*run.trace, 0);
  return detail::finishTrace(run, checkPolling(audit, run.point),
                             audit.availability, args);
}

/// Parametric (x = one metric, y = another) series, e.g. bandwidth vs
/// availability for Figs 14-17.
template <typename Point, typename FX, typename FY>
report::Series makeParametricSeries(const std::string& name,
                                    const std::vector<Point>& points, FX&& xOf,
                                    FY&& yOf) {
  report::Series s;
  s.name = name;
  for (const auto& p : points) {
    s.xs.push_back(xOf(p));
    s.ys.push_back(yOf(p));
  }
  return s;
}

}  // namespace comb::bench
