// Figure 14 — Polling method: bandwidth vs CPU availability, GM.
//
// Paper: "virtually all of the CPU cycles are given to the application
// ... while the network concurrently operates at maximum sustainable
// bandwidth; this testifies to the OS offload to the NIC for GM" — the
// curve hugs peak bandwidth out to availability ~1 for large messages.
// EXCEPT 10 KB: the eager protocol burns ~45 us of host time per send,
// so full bandwidth coexists only with reduced availability.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig14",
      "Polling method: bandwidth vs CPU availability (GM)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::gmMachine();
  const auto fam = runPollingFamily(machine, presets::paperMessageSizes(),
                                    args.pointsPerDecade + 1, args.runOptions());

  report::Figure fig("fig14",
                     "Polling Method: Bandwidth vs CPU Availability (GM)",
                     "cpu_availability", "bandwidth_MBps");
  fig.paperExpectation(
      "peak bandwidth held out to availability ~0.95+ for >=50 KB (OS "
      "offload); the 10 KB curve reaches peak bandwidth only at reduced "
      "availability (eager-send host cost)");

  std::vector<report::ShapeCheck> checks;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeParametricSeries(
        sizeLabel(fam.sizes[i]), fam.results[i],
        [](const PollingPoint& p) { return p.availability; },
        [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
    const double peak = *std::max_element(s.ys.begin(), s.ys.end());
    if (fam.sizes[i] >= 50 * 1024) {
      checks.push_back(report::checkCoexists(
          "high availability at >=85% peak bandwidth (" + s.name + ")",
          std::vector<double>(s.xs.begin(), s.xs.end()), s.ys, 0.9,
          0.85 * peak));
    } else {
      // 10 KB: full bandwidth must NOT coexist with high availability.
      auto c = report::checkCoexists("10 KB: peak bandwidth at avail>=0.8",
                                     std::vector<double>(s.xs.begin(),
                                                         s.xs.end()),
                                     s.ys, 0.8, 0.85 * peak);
      c.pass = !c.pass;
      c.name = "10 KB peak bandwidth only at reduced availability";
      checks.push_back(std::move(c));
    }
    fig.addSeries(std::move(s));
  }
  FigArchive archive("fig14_bw_vs_avail_gm", args);
  archivePollingFamily(archive, "polling/gm", machine, fam);
  archive.write();
  return finishFigure(fig, checks, args);
}
