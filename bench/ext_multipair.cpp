// Extension — multiple concurrent worker/support pairs through one
// switch.
//
// The paper runs one pair on an 8-port Myrinet switch. This extension
// splits a larger world into independent pair communicators (commSplit)
// and runs the full polling method on every pair *simultaneously*. With
// a non-blocking crossbar and distinct port pairs there is no shared
// wire, so per-pair bandwidth and availability must be invariant in the
// number of pairs — a strong validity check on the switch model, and the
// template for studying oversubscribed fabrics (point the pairs at a
// shared destination to see contention).
#include "backend/sim_cluster.hpp"
#include "comb/polling.hpp"
#include "fig_common.hpp"
#include "mpi/mpi.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

sim::Task<void> pairProcess(backend::SimProc& env, PollingParams params,
                            PollingPoint* out) {
  auto& mpi = env.mpi();
  // Nodes 2k and 2k+1 form pair k; rank parity selects the role.
  const int pairIndex = env.rank() / 2;
  const mpi::Comm pair =
      co_await mpi.commSplit(mpi.world(), pairIndex, env.rank());
  COMB_ASSERT(pair.size() == 2, "pair communicator must have 2 ranks");
  if (pair.rank() == 0) {
    *out = co_await pollingWorkerOn(env, params, pair);
  } else {
    co_await pollingSupportOn(env, params, pair);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "ext_multipair",
                   "concurrent polling pairs through one switch");
  if (!args.parsedOk) return args.exitCode;

  report::Figure fig(
      "ext_multipair",
      "Extension: Concurrent Polling Pairs Through One Switch (GM, 100 KB)",
      "concurrent_pairs", "per_pair_MBps_or_avail_x100");
  fig.paperExpectation(
      "non-blocking crossbar, distinct ports: per-pair bandwidth and "
      "availability invariant in the number of pairs");

  report::Series bw{"worst_pair_bandwidth_MBps", {}, {}};
  report::Series avail{"worst_pair_availability_x100", {}, {}};
  for (int pairs = 1; pairs <= 4; ++pairs) {
    backend::SimCluster cluster(backend::gmMachine(), 2 * pairs);
    auto params = presets::pollingBase(100_KB);
    params.pollInterval = 20'000;
    std::vector<PollingPoint> points(static_cast<std::size_t>(pairs));
    for (int n = 0; n < 2 * pairs; ++n) {
      cluster.launch(n, pairProcess(cluster.proc(n), params,
                                    &points[static_cast<std::size_t>(n / 2)]));
    }
    cluster.run();
    double minBw = 1e18, minAvail = 1e18;
    for (const auto& p : points) {
      minBw = std::min(minBw, toMBps(p.bandwidthBps));
      minAvail = std::min(minAvail, 100.0 * p.availability);
    }
    bw.xs.push_back(pairs);
    bw.ys.push_back(minBw);
    avail.xs.push_back(pairs);
    avail.ys.push_back(minAvail);
  }

  std::vector<report::ShapeCheck> checks;
  checks.push_back(
      report::checkFlat("per-pair bandwidth invariant", bw.ys, 0.03));
  checks.push_back(
      report::checkFlat("per-pair availability invariant", avail.ys, 0.03));
  checks.push_back(report::ShapeCheck{
      "pairs run at the single-pair plateau", bw.ys.front() > 80.0,
      strFormat("%.1f MB/s", bw.ys.front())});
  fig.addSeries(std::move(bw));
  fig.addSeries(std::move(avail));
  return finishFigure(fig, checks, args);
}
