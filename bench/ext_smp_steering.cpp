// Extension — SMP nodes with NIC interrupt steering (paper §7 future
// work: "we plan to address multi-processor nodes").
//
// With a second CPU per node and the Portals kernel work steered onto it,
// the application CPU stops paying for interrupts and copies: the polling
// method should then report near-GM availability at the (unchanged)
// Portals bandwidth plateau — quantifying how much of the Portals penalty
// is *placement* of the kernel work rather than its existence.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "ext_smp_steering",
      "Portals polling availability: uniprocessor vs SMP-steered");
  if (!args.parsedOk) return args.exitCode;

  auto uni = backend::portalsMachine();
  auto smp = backend::portalsMachine();
  smp.name = "portals-smp";
  smp.cpusPerNode = 2;
  smp.nicCpu = 1;  // kernel/NIC work on the second CPU

  const auto intervals = presets::pollSweep(args.pointsPerDecade);
  const auto spec = sweepOver(presets::pollingBase(100_KB), intervals);
  const auto uniRuns = runPollingSweepReps(uni, spec, args.runOptions());
  const auto smpRuns = runPollingSweepReps(smp, spec, args.runOptions());
  const auto uniPts = canonicalPoints(uniRuns);
  const auto smpPts = canonicalPoints(smpRuns);

  report::Figure fig("ext_smp_steering",
                     "Extension: SMP Interrupt Steering (Portals, 100 KB)",
                     "poll_interval_iters", "availability_or_MBps");
  fig.logX().paperExpectation(
      "steering kernel work to a second CPU restores application-CPU "
      "availability without losing the bandwidth plateau (paper future "
      "work, answered)");

  auto uniAvail = makeSeries("uni_avail", intervals, uniPts,
                             [](const PollingPoint& p) { return p.availability; });
  auto smpAvail = makeSeries("smp_avail", intervals, smpPts,
                             [](const PollingPoint& p) { return p.availability; });
  auto uniBw = makeSeries(
      "uni_bw_MBps", intervals, uniPts,
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  auto smpBw = makeSeries(
      "smp_bw_MBps", intervals, smpPts,
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });

  // Metric: best availability at any sweep point still delivering >= 85%
  // of that machine's peak bandwidth ("availability while at full rate").
  auto availAtRate = [](const std::vector<PollingPoint>& pts) {
    double peak = 0;
    for (const auto& p : pts) peak = std::max(peak, p.bandwidthBps);
    double best = 0;
    for (const auto& p : pts)
      if (p.bandwidthBps >= 0.85 * peak) best = std::max(best, p.availability);
    return best;
  };
  const double uniAtRate = availAtRate(uniPts);
  const double smpAtRate = availAtRate(smpPts);

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::ShapeCheck{
      "uniprocessor availability collapses at full rate", uniAtRate < 0.3,
      strFormat("avail=%.3f", uniAtRate)});
  checks.push_back(report::ShapeCheck{
      "steered availability stays high at full rate", smpAtRate > 0.75,
      strFormat("avail=%.3f", smpAtRate)});
  checks.push_back(report::checkPeakRatio(
      "bandwidth plateau preserved (within ~15%)", smpBw.ys, uniBw.ys, 0.85,
      1.25));
  fig.addSeries(std::move(uniAvail));
  fig.addSeries(std::move(smpAvail));
  fig.addSeries(std::move(uniBw));
  fig.addSeries(std::move(smpBw));
  FigArchive archive("ext_smp_steering", args);
  archive.addPolling("polling/portals/100 KB", uni, intervals, uniRuns);
  archive.addPolling("polling/portals-smp/100 KB", smp, intervals, smpRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
