// Extension — classic ping-pong latency/bandwidth microbenchmark.
//
// The paper's motivation (§1): conventional microbenchmarks show GM
// beating Portals on latency and bandwidth, but say nothing about
// overlap. Run next to the COMB figures, this is the "before" picture.
#include "fig_common.hpp"

#include "comb/latency.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(argc, argv, "ext_latency",
                                    "ping-pong latency vs message size");
  if (!args.parsedOk) return args.exitCode;

  const std::vector<Bytes> sizes{64, 1_KB, 4_KB, 10_KB, 50_KB, 100_KB,
                                 300_KB};
  SweepSpec<LatencyParams> spec;
  spec.base.reps = 30;
  spec.values = sizes;
  const auto gmRuns =
      runLatencySweepReps(backend::gmMachine(), spec, args.runOptions());
  const auto portalsRuns =
      runLatencySweepReps(backend::portalsMachine(), spec, args.runOptions());
  const auto gm = canonicalPoints(gmRuns);
  const auto portals = canonicalPoints(portalsRuns);

  report::Figure fig("ext_latency", "Extension: Ping-Pong Latency vs Size",
                     "message_bytes", "half_round_trip_us");
  fig.logX().paperExpectation(
      "GM under Portals at every size (no syscalls, no kernel copies); "
      "both grow linearly once serialization dominates");

  report::Series gmS{"GM", {}, {}}, ptlS{"Portals", {}, {}};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    gmS.xs.push_back(static_cast<double>(sizes[i]));
    gmS.ys.push_back(gm[i].halfRoundTripAvg * 1e6);
    ptlS.xs.push_back(static_cast<double>(sizes[i]));
    ptlS.ys.push_back(portals[i].halfRoundTripAvg * 1e6);
  }

  std::vector<report::ShapeCheck> checks;
  bool gmAlwaysFaster = true;
  for (std::size_t i = 0; i < sizes.size(); ++i)
    gmAlwaysFaster = gmAlwaysFaster && gmS.ys[i] < ptlS.ys[i];
  checks.push_back(report::ShapeCheck{
      "GM latency below Portals at every size", gmAlwaysFaster,
      strFormat("64B: %.1f vs %.1f us; 300KB: %.0f vs %.0f us", gmS.ys[0],
                ptlS.ys[0], gmS.ys.back(), ptlS.ys.back())});
  checks.push_back(report::checkNearlyMonotone(
      "latency grows with size (GM)", gmS.ys, true, 1.0));
  checks.push_back(report::checkNearlyMonotone(
      "latency grows with size (Portals)", ptlS.ys, true, 1.0));
  // Large-message ping-pong bandwidth approaches the polling plateau.
  const double gmBw300 = toMBps(gm.back().bandwidthBps);
  checks.push_back(report::ShapeCheck{
      "GM 300 KB ping-pong bandwidth near the plateau",
      gmBw300 > 70.0 && gmBw300 < 95.0, strFormat("%.1f MB/s", gmBw300)});
  fig.addSeries(std::move(gmS));
  fig.addSeries(std::move(ptlS));
  FigArchive archive("ext_latency_vs_size", args);
  archive.addLatency("latency/gm", backend::gmMachine(), sizes, gmRuns);
  archive.addLatency("latency/portals", backend::portalsMachine(), sizes,
                     portalsRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
