// Extension — congestion at scale: incast / hotspot / pairwise all-to-all
// on a two-level fat-tree, 64 to 1024 nodes, GM vs Portals.
//
// The paper measures one pair on an idle 8-port switch. This extension
// asks how the same stacks behave when the *fabric* is the bottleneck:
// finite per-output-port switch queues, oversubscribed trunks, and
// traffic matrices that concentrate load. Reported per point:
//
//   * aggregate delivered bandwidth (total payload / makespan),
//   * per-sender goodput (delivered share of the slowest pattern),
//   * work-loop availability (min over nodes),
//   * switch-queue drops / credit stalls and peak queue depth.
//
// The scale sweeps run *credit backpressure* — the fabrics of the paper's
// era (Myrinet, the Portals machines) are lossless, backpressured
// networks, and tail drop under sustained incast drives both stacks into
// retransmission collapse (the Portals NIC's autonomous retries re-collide
// until exponential backoff dominates the makespan by orders of
// magnitude). A tail-drop incast side sweep (GM, smaller scale) keeps the
// lossy path honest: drops engage, retransmission still delivers every
// message.
//
// Expected shapes: incast per-sender goodput decays ~1/N (one victim
// downlink shared by N-1 senders), the lossless sweeps finish with zero
// drops and zero retransmissions, and the GM-vs-Portals bandwidth ratio
// deforms across patterns as contention replaces host overhead as the
// limiting resource.
//
// Node counts default to {64, 256}; set COMB_CONGESTION_MAX_NODES=1024
// for the full-scale run (the 1024-node incast pushes ~128 MB of payload
// through one victim downlink).
#include "fig_common.hpp"

#include <cstdlib>
#include <cstring>

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

backend::MachineConfig congestedFatTree(backend::TransportKind kind,
                                        net::Backpressure bp) {
  auto m = kind == backend::TransportKind::Gm ? backend::gmMachine()
                                              : backend::portalsMachine();
  // 8 nodes + 4 spines per leaf: 2*8 + 2*4 = 24 unidirectional ports.
  m.fabric.sw.ports = 24;
  m.fabric.topo.kind = net::TopologyKind::FatTree;
  m.fabric.topo.nodesPerSwitch = 8;
  m.fabric.topo.spines = 4;  // 2:1 oversubscribed at trunk_rate_scale 1
  m.fabric.sw.queue.depthPackets = 32;
  m.fabric.sw.queue.backpressure = bp;
  // For the tail-drop side sweep: sustained incast makes drops the common
  // case, not the exception — the default retry budget (sized for
  // lossy-link fault injection) starves.
  m.gm.rel.maxRetries = 64;
  m.portals.rel.maxRetries = 64;
  return m;
}

CongestionParams baseParams(CongestionPattern pattern) {
  CongestionParams p;
  p.pattern = pattern;
  p.msgBytes = 64_KB;  // past both eager thresholds: rendezvous traffic
  p.messagesPerSender = 2;
  p.window = 8;
  p.pollInterval = 50'000;
  return p;
}

std::vector<std::uint64_t> nodeCounts() {
  std::vector<std::uint64_t> nodes{64, 256};
  if (const char* cap = std::getenv("COMB_CONGESTION_MAX_NODES"))
    if (std::strtoull(cap, nullptr, 10) >= 1024) nodes.push_back(1024);
  return nodes;
}

std::uint64_t expectedDeliveries(const CongestionParams& p) {
  std::uint64_t total = 0;
  for (std::uint64_t r = 0; r < p.nodes; ++r)
    total += congestionDests(p, static_cast<int>(r)).size();
  return total;
}

const char* stackName(backend::TransportKind k) {
  return k == backend::TransportKind::Gm ? "GM" : "Portals";
}

void printPoint(const std::string& label, std::uint64_t n,
                const CongestionPoint& pt) {
  std::printf(
      "%-22s n=%-5llu agg=%8.1f MB/s sender=%6.2f MB/s avail=%.3f "
      "qdrops=%llu stalls=%llu qpeak=%llu retx=%llu\n",
      label.c_str(), static_cast<unsigned long long>(n),
      toMBps(pt.bandwidthBps), toMBps(pt.meanNodeBandwidthBps),
      pt.minAvailability,
      static_cast<unsigned long long>(pt.switches.dropsQueue),
      static_cast<unsigned long long>(pt.switches.creditStalls),
      static_cast<unsigned long long>(pt.switches.queuePeakPackets),
      static_cast<unsigned long long>(pt.fault.retransmits));
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "ext_congestion",
      "incast/hotspot/all-to-all on an oversubscribed fat-tree, 64-1024 "
      "nodes, GM vs Portals");
  if (!args.parsedOk) return args.exitCode;

  const auto nodes = nodeCounts();
  const std::vector<CongestionPattern> patterns{CongestionPattern::Incast,
                                                CongestionPattern::Hotspot,
                                                CongestionPattern::AllToAll};

  FigArchive archive("ext_congestion", args);
  report::Figure bwFig("ext_congestion_bw",
                       "Extension: Aggregate Bandwidth Under Congestion "
                       "(fat-tree 8x4, credit backpressure)",
                       "nodes", "aggregate_MBps");
  bwFig.paperExpectation(
      "incast pins the aggregate at one victim downlink while all-to-all "
      "scales with the node count; the lossless fabric delivers everything "
      "without a single retransmission");
  report::Figure availFig("ext_congestion_avail",
                          "Extension: Worst-Node Availability Under "
                          "Congestion (fat-tree 8x4, credit backpressure)",
                          "nodes", "min_availability");

  std::vector<report::ShapeCheck> checks;
  bool allDelivered = true;
  bool lossless = true;
  bool queueObserved = true;
  // Deformation data: GM/Portals aggregate-bandwidth ratio per pattern at
  // the largest node count.
  std::vector<double> ratioAtMax(patterns.size(), 0.0);

  for (const auto kind :
       {backend::TransportKind::Gm, backend::TransportKind::Portals}) {
    const auto machine = congestedFatTree(kind, net::Backpressure::Credit);
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const auto pattern = patterns[pi];
      const auto runs = runCongestionSweepReps(
          machine, sweepOver(baseParams(pattern), nodes), args.runOptions());
      const auto points = canonicalPoints(runs);
      const std::string label = std::string(stackName(kind)) + " " +
                                congestionPatternName(pattern);
      archive.addCongestion("congestion/" + label, machine, nodes, runs);

      bwFig.addSeries(makeSeries(label, nodes, points,
                                 [](const CongestionPoint& p) {
                                   return toMBps(p.bandwidthBps);
                                 }));
      availFig.addSeries(makeSeries(label, nodes, points,
                                    [](const CongestionPoint& p) {
                                      return p.minAvailability;
                                    }));

      std::vector<double> perSender;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& pt = points[i];
        auto p = baseParams(pattern);
        p.nodes = nodes[i];
        allDelivered =
            allDelivered && pt.messagesDelivered == expectedDeliveries(p);
        lossless = lossless && pt.switches.dropsQueue == 0 &&
                   pt.fault.retransmits == 0;
        queueObserved = queueObserved && pt.switches.queuePeakPackets > 0;
        perSender.push_back(pt.meanNodeBandwidthBps);
        printPoint(label, nodes[i], pt);
      }
      if (pattern == CongestionPattern::Incast) {
        checks.push_back(report::checkNearlyMonotone(
            std::string("incast per-sender goodput falls with fan-in (") +
                stackName(kind) + ")",
            perSender, false, 0.0));
      }
      if (kind == backend::TransportKind::Gm)
        ratioAtMax[pi] = points.back().bandwidthBps;
      else if (points.back().bandwidthBps > 0)
        ratioAtMax[pi] /= points.back().bandwidthBps;
    }
  }

  // Tail-drop side sweep: GM incast at the lower node counts. Lossy
  // queues engage the transport's retransmission protocol under real
  // congestion (not injected faults) and it must still deliver everything.
  {
    const auto machine =
        congestedFatTree(backend::TransportKind::Gm, net::Backpressure::TailDrop);
    const std::vector<std::uint64_t> dropNodes{64, 128};
    const auto runs = runCongestionSweepReps(
        machine, sweepOver(baseParams(CongestionPattern::Incast), dropNodes),
        args.runOptions());
    const auto points = canonicalPoints(runs);
    archive.addCongestion("congestion/GM incast taildrop", machine, dropNodes,
                          runs);
    bool dropsSeen = true, dropDelivered = true, retxSeen = true;
    std::vector<double> drops;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = points[i];
      auto p = baseParams(CongestionPattern::Incast);
      p.nodes = dropNodes[i];
      dropsSeen = dropsSeen && pt.switches.dropsQueue > 0;
      retxSeen = retxSeen && pt.fault.retransmits > 0;
      dropDelivered =
          dropDelivered && pt.messagesDelivered == expectedDeliveries(p);
      drops.push_back(static_cast<double>(pt.switches.dropsQueue));
      printPoint("GM incast taildrop", dropNodes[i], pt);
    }
    checks.push_back(report::ShapeCheck{
        "tail drop engages under incast (side sweep)", dropsSeen, ""});
    checks.push_back(report::ShapeCheck{
        "retransmission delivers every message despite tail drop",
        dropDelivered && retxSeen, ""});
    checks.push_back(report::checkNearlyMonotone(
        "queue drops grow with fan-in (tail-drop side sweep)", drops, true,
        0.0));
  }
  std::printf("\n");

  checks.push_back(report::ShapeCheck{
      "credit fabric is lossless end to end: zero drops, zero retransmits",
      lossless && allDelivered, ""});
  checks.push_back(report::ShapeCheck{
      "finite queues observed at depth under every pattern", queueObserved,
      ""});
  // Contention deforms the stack signature: the GM:Portals ratio is not
  // one constant across patterns once the fabric is the bottleneck.
  double ratioMin = ratioAtMax[0], ratioMax = ratioAtMax[0];
  for (const double r : ratioAtMax) {
    ratioMin = std::min(ratioMin, r);
    ratioMax = std::max(ratioMax, r);
  }
  checks.push_back(report::ShapeCheck{
      "GM:Portals bandwidth ratio deforms across patterns under contention",
      ratioMax > ratioMin * 1.02,
      strFormat("ratio spans %.3f .. %.3f", ratioMin, ratioMax)});

  // Determinism spot check: the smallest incast point, serial vs parallel.
  {
    auto p = baseParams(CongestionPattern::Incast);
    p.nodes = nodes.front();
    RunOptions serial = args.runOptions();
    serial.jobs = 1;
    const auto machine =
        congestedFatTree(backend::TransportKind::Gm, net::Backpressure::Credit);
    const auto a = runCongestionPoint(machine, p, serial);
    const auto b = runCongestionPoint(machine, p, args.runOptions());
    checks.push_back(report::ShapeCheck{
        strFormat("bit-identical results for --jobs 1 vs --jobs %d",
                  args.jobs),
        a.bandwidthBps == b.bandwidthBps && a.makespan == b.makespan &&
            a.switches.creditStalls == b.switches.creditStalls,
        ""});
  }

  availFig.render(std::cout);
  if (args.csv)
    std::cout << "csv: " << availFig.writeCsvFile(args.outDir) << '\n';
  archive.write();
  return finishFigure(bwFig, checks, args);
}
