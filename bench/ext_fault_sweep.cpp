// Extension — fault sweep: what the retransmission protocols salvage.
//
// Sweeps the fabric's packet-drop probability on both machine models and
// plots surviving bandwidth and availability. Expected shape (see
// EXPERIMENTS.md): bandwidth decays monotonically with drop rate on both
// stacks, but Portals availability degrades slower than GM's at equal
// drop rate — Portals retransmits from NIC-retained buffers with zero
// host involvement, while GM re-stages eager bytes on the host CPU,
// inside MPI library calls.
//
// Every point runs with the same fault seed, so the sweep is
// bit-reproducible for any --jobs value; the bench verifies that too.
#include "fig_common.hpp"

#include <algorithm>

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

PollingParams faultPollingBase() {
  auto p = presets::pollingBase(100_KB);
  p.pollInterval = 30'000;
  p.targetDuration = 20e-3;
  p.maxPolls = 20'000;
  return p;
}

std::vector<PollingPoint> faultSweep(const backend::MachineConfig& machine,
                                     const std::vector<double>& drops,
                                     const net::FaultSpec& tmpl, int jobs) {
  // Note: the default 2 ms ack timeout is deliberately conservative.
  // With queue-depth-8 x 100 KB traffic both ways, acks queue behind
  // data; a tighter timeout causes spurious retransmissions that feed
  // back into more congestion until the retry budget blows.
  const auto base = faultPollingBase();
  return runSweepParallel(
      machine, drops,
      [&](const backend::MachineConfig& m, const double drop) {
        auto fault = tmpl;
        fault.dropProb = drop;
        RunOptions opts;
        opts.fault = fault;
        return runPollingPoint(m, base, opts);
      },
      jobs);
}

bool samePoint(const PollingPoint& a, const PollingPoint& b) {
  return a.availability == b.availability &&
         a.bandwidthBps == b.bandwidthBps && a.liveTime == b.liveTime &&
         a.messagesReceived == b.messagesReceived &&
         a.fault.dropsInjected == b.fault.dropsInjected &&
         a.fault.retransmits == b.fault.retransmits &&
         a.fault.timeoutWakeups == b.fault.timeoutWakeups &&
         a.fault.duplicatesFiltered == b.fault.duplicatesFiltered;
}

template <typename F>
report::Series dropSeries(const std::string& name,
                          const std::vector<double>& drops,
                          const std::vector<PollingPoint>& pts, F&& yOf) {
  report::Series s;
  s.name = name;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.xs.push_back(100.0 * drops[i]);
    s.ys.push_back(yOf(pts[i]));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "ext_fault_sweep",
      "bandwidth/availability vs link drop rate, GM vs Portals");
  if (!args.parsedOk) return args.exitCode;

  const std::vector<double> drops{0.0, 0.005, 0.01, 0.02, 0.05, 0.1};
  // --fault supplies the non-swept knobs (burst, corrupt, jitter, seed);
  // the drop rate itself is the swept axis.
  net::FaultSpec tmpl;
  tmpl.burstLen = 2;
  if (args.fault) tmpl = *args.fault;

  const auto gm = faultSweep(backend::gmMachine(), drops, tmpl, args.jobs);
  const auto portals =
      faultSweep(backend::portalsMachine(), drops, tmpl, args.jobs);
  // Re-run one sweep serially: a parallel schedule must not change bits.
  const auto gmSerial = faultSweep(backend::gmMachine(), drops, tmpl, 1);

  const auto bwOf = [](const PollingPoint& p) {
    return toMBps(p.bandwidthBps);
  };
  const auto availOf = [](const PollingPoint& p) { return p.availability; };

  report::Figure availFig("ext_fault_avail",
                          "Extension: Availability vs Drop Rate",
                          "drop_percent", "availability");
  availFig.paperExpectation(
      "Portals availability decays slower than GM's: NIC-resident "
      "retransmission costs the host nothing, GM re-staging does");
  availFig.addSeries(dropSeries("GM", drops, gm, availOf));
  availFig.addSeries(dropSeries("Portals", drops, portals, availOf));
  availFig.render(std::cout);
  if (args.csv)
    std::cout << "csv: " << availFig.writeCsvFile(args.outDir) << '\n';

  report::Figure fig("ext_fault_bw", "Extension: Bandwidth vs Drop Rate",
                     "drop_percent", "bandwidth_MBps");
  fig.paperExpectation(
      "goodput decays monotonically with drop rate on both stacks; "
      "delivery stays exactly-once throughout");
  auto gmBwS = dropSeries("GM", drops, gm, bwOf);
  auto ptlBwS = dropSeries("Portals", drops, portals, bwOf);

  std::vector<report::ShapeCheck> checks;
  const double slackBw = 0.03 * std::max(gmBwS.ys[0], ptlBwS.ys[0]);
  checks.push_back(report::checkNearlyMonotone(
      "bandwidth non-increasing in drop rate (GM)", gmBwS.ys, false, slackBw));
  checks.push_back(report::checkNearlyMonotone(
      "bandwidth non-increasing in drop rate (Portals)", ptlBwS.ys, false,
      slackBw));

  bool availInRange = true;
  for (const auto* pts : {&gm, &portals})
    for (const auto& p : *pts)
      availInRange =
          availInRange && p.availability >= 0.0 && p.availability <= 1.0;
  checks.push_back(report::ShapeCheck{"availability within [0, 1]",
                                      availInRange, ""});

  bool lossDetected = true, recoveryActive = true;
  for (const auto* pts : {&gm, &portals}) {
    for (std::size_t i = 0; i < drops.size(); ++i) {
      if (drops[i] == 0.0) continue;
      lossDetected = lossDetected && (*pts)[i].fault.dropsInjected > 0;
      recoveryActive = recoveryActive && (*pts)[i].fault.retransmits > 0;
    }
  }
  checks.push_back(report::ShapeCheck{
      "every lossy point injected drops", lossDetected, ""});
  checks.push_back(report::ShapeCheck{
      "every lossy point retransmitted", recoveryActive, ""});

  // Relative availability decay, zero-drop point vs the worst drop rate.
  const double gmDecay = gm[0].availability > 0
                             ? gm.back().availability / gm[0].availability
                             : 0.0;
  const double ptlDecay =
      portals[0].availability > 0
          ? portals.back().availability / portals[0].availability
          : 0.0;
  checks.push_back(report::ShapeCheck{
      "Portals availability decays slower than GM under loss",
      ptlDecay >= gmDecay,
      strFormat("retained at 10%% drop: Portals %.0f%%, GM %.0f%%",
                100.0 * ptlDecay, 100.0 * gmDecay)});

  bool bitIdentical = gmSerial.size() == gm.size();
  for (std::size_t i = 0; bitIdentical && i < gm.size(); ++i)
    bitIdentical = samePoint(gm[i], gmSerial[i]);
  checks.push_back(report::ShapeCheck{
      strFormat("bit-identical results for --jobs 1 vs --jobs %d", args.jobs),
      bitIdentical, ""});

  fig.addSeries(std::move(gmBwS));
  fig.addSeries(std::move(ptlBwS));
  return finishFigure(fig, checks, args);
}
