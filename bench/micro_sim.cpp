// Micro-benchmarks (google-benchmark): simulator core throughput.
// These guard the substrate's performance — figure sweeps execute
// millions of events, so event-queue and coroutine costs matter.
#include <benchmark/benchmark.h>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {

using namespace comb;
using namespace comb::units;

void BM_EventScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i)
      sim.schedule(static_cast<Time>(i % 97) * 1_us, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CancelledEvents(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      auto h = sim.schedule(1_us, [] {});
      if (i % 2 == 0) h.cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CancelledEvents)->Arg(10000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  const auto steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    auto proc = [](sim::Simulator& s, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) co_await s.delay(1e-6);
    };
    sim.spawn(proc(sim, steps), "loop");
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    auto ping = [](sim::Simulator&, sim::Channel<int>& tx,
                   sim::Channel<int>& rx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        tx.send(i);
        (void)co_await rx.recv();
      }
    };
    auto pong = [](sim::Simulator&, sim::Channel<int>& rx,
                   sim::Channel<int>& tx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        const int v = co_await rx.recv();
        tx.send(v);
      }
    };
    sim.spawn(ping(sim, a, b, rounds), "ping");
    sim.spawn(pong(sim, a, b, rounds), "pong");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_CpuComputeUnderInterrupts(benchmark::State& state) {
  const auto interrupts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    host::Cpu cpu(sim, "n0");
    auto proc = [](host::Cpu& c) -> sim::Task<void> {
      co_await c.compute(1.0);
    };
    sim.spawn(proc(cpu), "p");
    for (int i = 0; i < interrupts; ++i)
      sim.schedule(static_cast<Time>(i) * 1e-4, [&cpu] {
        cpu.raiseInterrupt(10e-6);
      });
    sim.run();
    benchmark::DoNotOptimize(cpu.isrTime());
  }
  state.SetItemsProcessed(state.iterations() * interrupts);
}
BENCHMARK(BM_CpuComputeUnderInterrupts)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
