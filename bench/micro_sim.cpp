// Micro-benchmarks (google-benchmark): simulator core throughput.
// These guard the substrate's performance — figure sweeps execute
// millions of events, so event-queue and coroutine costs matter.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "net/fabric.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/tracelog.hpp"
#include "transport/payload_pool.hpp"
#include "transport/wire.hpp"

namespace {

using namespace comb;
using namespace comb::units;

void BM_EventScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i)
      sim.schedule(static_cast<Time>(i % 97) * 1_us, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CancelledEvents(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      auto h = sim.schedule(1_us, [] {});
      if (i % 2 == 0) h.cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CancelledEvents)->Arg(10000);

// Steady-state scheduling: one long-lived simulator, so the event pool
// (post-optimization) reaches its high-water mark once and then recycles
// slots with zero heap traffic. Contrast with BM_EventScheduleAndRun,
// which pays simulator construction per iteration.
void BM_EventPoolChurn(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i)
      sim.schedule(static_cast<Time>(i % 13) * 1_us, [] {});
    sim.run();
  }
  benchmark::DoNotOptimize(sim.eventsExecuted());
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventPoolChurn)->Arg(1000)->Arg(10000);

// The preemptible-CPU idiom: a completion timer is cancelled and re-armed
// on every interrupt. Exercises cancel() + slot recycling under churn.
void BM_CancelStorm(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  for (auto _ : state) {
    sim::EventHandle timer;
    for (int i = 0; i < batch; ++i) {
      timer.cancel();
      timer = sim.schedule(1_ms, [] {});
      sim.schedule(static_cast<Time>(i % 7) * 1_us, [] {});
    }
    timer.cancel();
    sim.run();
  }
  benchmark::DoNotOptimize(sim.eventsExecuted());
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CancelStorm)->Arg(10000);

// Per-packet cost through the full fabric path: payload allocation,
// uplink serialization, switch routing, downlink delivery, payload
// downcast at the receiver — the inner loop of every figure sweep.
void BM_PacketDelivery(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  std::uint64_t delivered = 0;
  const net::NodeId rx = fabric.addNode([&](net::Packet p) {
    const auto* wp = net::payloadAs<transport::WirePayload>(p);
    if (wp != nullptr) ++delivered;
  });
  const net::NodeId tx = fabric.addNode([](net::Packet) {});
  transport::WirePayloadPool pool;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      auto wp = pool.acquire();
      wp->msgId = static_cast<std::uint64_t>(i);
      fabric.inject(tx, rx, 512, std::move(wp));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PacketDelivery)->Arg(1000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  const auto steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    auto proc = [](sim::Simulator& s, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) co_await s.delay(1e-6);
    };
    sim.spawn(proc(sim, steps), "loop");
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    auto ping = [](sim::Simulator&, sim::Channel<int>& tx,
                   sim::Channel<int>& rx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        tx.send(i);
        (void)co_await rx.recv();
      }
    };
    auto pong = [](sim::Simulator&, sim::Channel<int>& rx,
                   sim::Channel<int>& tx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        const int v = co_await rx.recv();
        tx.send(v);
      }
    };
    sim.spawn(ping(sim, a, b, rounds), "ping");
    sim.spawn(pong(sim, a, b, rounds), "pong");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_CpuComputeUnderInterrupts(benchmark::State& state) {
  const auto interrupts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    host::Cpu cpu(sim, "n0");
    auto proc = [](host::Cpu& c) -> sim::Task<void> {
      co_await c.compute(1.0);
    };
    sim.spawn(proc(cpu), "p");
    for (int i = 0; i < interrupts; ++i)
      sim.schedule(static_cast<Time>(i) * 1e-4, [&cpu] {
        cpu.raiseInterrupt(10e-6);
      });
    sim.run();
    benchmark::DoNotOptimize(cpu.isrTime());
  }
  state.SetItemsProcessed(state.iterations() * interrupts);
}
BENCHMARK(BM_CpuComputeUnderInterrupts)->Arg(1000);

// The tracing contract: a detached TraceLog costs one predicted-false
// branch per emit site, so this must match BM_CpuComputeUnderInterrupts;
// the attached variant prices the actual ring writes for comparison.
void BM_InterruptPathTracing(benchmark::State& state) {
  const auto interrupts = static_cast<int>(state.range(0));
  const bool attached = state.range(1) != 0;
  sim::TraceLog log(1 << 16);
  for (auto _ : state) {
    sim::Simulator sim;
    if (attached) sim.attachTraceLog(&log);
    host::Cpu cpu(sim, "n0");
    auto proc = [](host::Cpu& c) -> sim::Task<void> {
      co_await c.compute(1.0);
    };
    sim.spawn(proc(cpu), "p");
    for (int i = 0; i < interrupts; ++i)
      sim.schedule(static_cast<Time>(i) * 1e-4, [&cpu] {
        cpu.raiseInterrupt(10e-6);
      });
    sim.run();
    benchmark::DoNotOptimize(cpu.isrTime());
    log.clear();
  }
  state.SetLabel(attached ? "attached" : "detached");
  state.SetItemsProcessed(state.iterations() * interrupts);
}
BENCHMARK(BM_InterruptPathTracing)->Args({1000, 0})->Args({1000, 1});

// Raw emission throughput with the ring attached: the per-record cost a
// traced run pays on top of the simulation itself.
void BM_TraceEmit(benchmark::State& state) {
  sim::TraceLog log(1 << 16);
  double t = 0;
  for (auto _ : state) {
    log.emit(t, sim::TraceCategory::NicEvent, 0, "tx-frag", 4160);
    t += 1e-6;
  }
  benchmark::DoNotOptimize(log.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

}  // namespace

BENCHMARK_MAIN();
