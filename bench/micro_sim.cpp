// Micro-benchmarks (google-benchmark): simulator core throughput.
// These guard the substrate's performance — figure sweeps execute
// millions of events, so event-queue and coroutine costs matter.
#include <benchmark/benchmark.h>

#include <memory>

#include "backend/machine.hpp"
#include "comb/congestion.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"
#include "host/cpu.hpp"
#include "net/fabric.hpp"
#include "sim/channel.hpp"
#include "sim/executor.hpp"
#include "sim/shard_context.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/tracelog.hpp"
#include "transport/payload_pool.hpp"
#include "transport/wire.hpp"

namespace {

using namespace comb;
using namespace comb::units;

void BM_EventScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i)
      sim.schedule(static_cast<Time>(i % 97) * 1_us, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CancelledEvents(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      auto h = sim.schedule(1_us, [] {});
      if (i % 2 == 0) h.cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CancelledEvents)->Arg(10000);

// Steady-state scheduling: one long-lived simulator, so the event pool
// (post-optimization) reaches its high-water mark once and then recycles
// slots with zero heap traffic. Contrast with BM_EventScheduleAndRun,
// which pays simulator construction per iteration.
void BM_EventPoolChurn(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i)
      sim.schedule(static_cast<Time>(i % 13) * 1_us, [] {});
    sim.run();
  }
  benchmark::DoNotOptimize(sim.eventsExecuted());
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventPoolChurn)->Arg(1000)->Arg(10000);

// The preemptible-CPU idiom: a completion timer is cancelled and re-armed
// on every interrupt. Exercises cancel() + slot recycling under churn.
void BM_CancelStorm(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  for (auto _ : state) {
    sim::EventHandle timer;
    for (int i = 0; i < batch; ++i) {
      timer.cancel();
      timer = sim.schedule(1_ms, [] {});
      sim.schedule(static_cast<Time>(i % 7) * 1_us, [] {});
    }
    timer.cancel();
    sim.run();
  }
  benchmark::DoNotOptimize(sim.eventsExecuted());
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CancelStorm)->Arg(10000);

// Per-packet cost through the full fabric path: payload allocation,
// uplink serialization, switch routing, downlink delivery, payload
// downcast at the receiver — the inner loop of every figure sweep.
void BM_PacketDelivery(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  std::uint64_t delivered = 0;
  const net::NodeId rx = fabric.addNode([&](net::Packet p) {
    const auto* wp = net::payloadAs<transport::WirePayload>(p);
    if (wp != nullptr) ++delivered;
  });
  const net::NodeId tx = fabric.addNode([](net::Packet) {});
  transport::WirePayloadPool pool;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      auto wp = pool.acquire();
      wp->msgId = static_cast<std::uint64_t>(i);
      fabric.inject(tx, rx, 512, std::move(wp));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PacketDelivery)->Arg(1000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  const auto steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    auto proc = [](sim::Simulator& s, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) co_await s.delay(1e-6);
    };
    sim.spawn(proc(sim, steps), "loop");
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    auto ping = [](sim::Simulator&, sim::Channel<int>& tx,
                   sim::Channel<int>& rx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        tx.send(i);
        (void)co_await rx.recv();
      }
    };
    auto pong = [](sim::Simulator&, sim::Channel<int>& rx,
                   sim::Channel<int>& tx, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        const int v = co_await rx.recv();
        tx.send(v);
      }
    };
    sim.spawn(ping(sim, a, b, rounds), "ping");
    sim.spawn(pong(sim, a, b, rounds), "pong");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_CpuComputeUnderInterrupts(benchmark::State& state) {
  const auto interrupts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    host::Cpu cpu(sim, "n0");
    auto proc = [](host::Cpu& c) -> sim::Task<void> {
      co_await c.compute(1.0);
    };
    sim.spawn(proc(cpu), "p");
    for (int i = 0; i < interrupts; ++i)
      sim.schedule(static_cast<Time>(i) * 1e-4, [&cpu] {
        cpu.raiseInterrupt(10e-6);
      });
    sim.run();
    benchmark::DoNotOptimize(cpu.isrTime());
  }
  state.SetItemsProcessed(state.iterations() * interrupts);
}
BENCHMARK(BM_CpuComputeUnderInterrupts)->Arg(1000);

// The tracing contract: a detached TraceLog costs one predicted-false
// branch per emit site, so this must match BM_CpuComputeUnderInterrupts;
// the attached variant prices the actual ring writes for comparison.
void BM_InterruptPathTracing(benchmark::State& state) {
  const auto interrupts = static_cast<int>(state.range(0));
  const bool attached = state.range(1) != 0;
  sim::TraceLog log(1 << 16);
  for (auto _ : state) {
    sim::Simulator sim;
    if (attached) sim.attachTraceLog(&log);
    host::Cpu cpu(sim, "n0");
    auto proc = [](host::Cpu& c) -> sim::Task<void> {
      co_await c.compute(1.0);
    };
    sim.spawn(proc(cpu), "p");
    for (int i = 0; i < interrupts; ++i)
      sim.schedule(static_cast<Time>(i) * 1e-4, [&cpu] {
        cpu.raiseInterrupt(10e-6);
      });
    sim.run();
    benchmark::DoNotOptimize(cpu.isrTime());
    log.clear();
  }
  state.SetLabel(attached ? "attached" : "detached");
  state.SetItemsProcessed(state.iterations() * interrupts);
}
BENCHMARK(BM_InterruptPathTracing)->Args({1000, 0})->Args({1000, 1});

// Window-loop overhead of the sharded core: per-shard event streams with
// NO cross-shard traffic, and events spaced exactly one lookahead apart so
// every event opens a fresh window — the worst case for window churn.
// Compare against BM_EventScheduleAndRun for the sharding tax.
void BM_ShardedWindowAdvance(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int perShard = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::ExecutorOptions o;
    o.shards = shards;
    o.lookahead = 1_us;
    o.workers = 1;
    sim::Executor exec(o);
    for (int s = 0; s < shards; ++s)
      for (int i = 0; i < perShard; ++i)
        exec.shard(s).schedule(static_cast<Time>(i) * 1_us, [] {});
    exec.run();
    benchmark::DoNotOptimize(exec.eventsExecuted());
  }
  state.SetItemsProcessed(state.iterations() * shards * perShard);
}
BENCHMARK(BM_ShardedWindowAdvance)->Args({4, 2500});

// Cross-shard delivery cost: every message rides the outbox -> inbox
// fold-in machinery (packed-key sort included), one message per window.
void BM_CrossShardPost(benchmark::State& state) {
  const auto msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::ExecutorOptions o;
    o.shards = 2;
    o.lookahead = 1_us;
    o.workers = 1;
    sim::Executor exec(o);
    std::uint64_t delivered = 0;
    for (int i = 0; i < msgs; ++i)
      exec.shard(0).schedule(static_cast<Time>(i) * 1_us,
                             [&exec, &delivered] {
                               auto& src = exec.shard(0);
                               src.postRemote(exec.shard(1), src.now() + 1_us,
                                              [&delivered] { ++delivered; });
                             });
    exec.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_CrossShardPost)->Arg(10000);

// End-to-end sharded-core cost at scale: an incast congestion point on
// the oversubscribed fat-tree, serial core (sim-jobs 1) vs sharded.
// items/s counts delivered messages. On a single-core host the worker
// budget caps the pool at one thread, so the sharded rows price the
// window/fold-in overhead; real speedups need spare cores.
void BM_CongestionIncastSharded(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  auto machine = backend::gmMachine();
  machine.fabric.sw.ports = 24;
  machine.fabric.topo.kind = net::TopologyKind::FatTree;
  machine.fabric.topo.nodesPerSwitch = 8;
  machine.fabric.topo.spines = 4;
  machine.fabric.sw.queue.depthPackets = 32;
  machine.fabric.sw.queue.backpressure = net::Backpressure::Credit;
  bench::CongestionParams p;
  p.pattern = bench::CongestionPattern::Incast;
  p.nodes = nodes;
  p.msgBytes = 16_KB;
  p.messagesPerSender = 1;
  p.window = 8;
  bench::RunOptions opts;
  opts.simJobs = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto point = bench::runCongestionPoint(machine, p, opts);
    benchmark::DoNotOptimize(point.messagesDelivered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes - 1));
}
BENCHMARK(BM_CongestionIncastSharded)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({1024, 8})
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Unit(benchmark::kMillisecond);

// Raw emission throughput with the ring attached: the per-record cost a
// traced run pays on top of the simulation itself.
void BM_TraceEmit(benchmark::State& state) {
  sim::TraceLog log(1 << 16);
  double t = 0;
  for (auto _ : state) {
    log.emit(t, sim::TraceCategory::NicEvent, 0, "tx-frag", 4160);
    t += 1e-6;
  }
  benchmark::DoNotOptimize(log.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

}  // namespace

BENCHMARK_MAIN();
