// Figure 11 — PWW method: average wait time (100 KB), GM vs Portals.
//
// Paper: "given a large enough work interval, Portals will virtually
// complete messaging whereas GM will not" — the application-offload
// detector. Portals' wait time falls to ~0; GM's stays near the full
// transfer time no matter how long the work interval is.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig11", "PWW method: average wait time (100 KB)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = presets::workSweep(args.pointsPerDecade);
  const auto spec = sweepOver(presets::pwwBase(100_KB), intervals);
  const auto gmRuns =
      runPwwSweepReps(backend::gmMachine(), spec, args.runOptions());
  const auto portalsRuns =
      runPwwSweepReps(backend::portalsMachine(), spec, args.runOptions());
  const auto gm = canonicalPoints(gmRuns);
  const auto portals = canonicalPoints(portalsRuns);

  report::Figure fig("fig11", "PWW Method: Average Wait Time (100 KB)",
                     "work_interval_iters", "wait_time_us");
  fig.logX().paperExpectation(
      "Portals wait falls to ~0 at long work intervals (application "
      "offload); GM wait stays ~constant at the full exchange time (no "
      "offload)");

  auto gmSeries =
      makeSeries("GM", intervals, gm,
                 [](const PwwPoint& p) { return p.avgWaitPerMsg * 1e6; });
  auto ptlSeries =
      makeSeries("Portals", intervals, portals,
                 [](const PwwPoint& p) { return p.avgWaitPerMsg * 1e6; });

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::checkEndsBelow(
      "Portals wait -> ~0 at long work intervals", ptlSeries.ys, 20.0));
  checks.push_back(report::checkEndsAbove(
      "GM wait stays ~ message time (no offload)", gmSeries.ys, 800.0));
  checks.push_back(
      report::checkFlat("GM wait flat across work intervals", gmSeries.ys,
                        0.35));
  fig.addSeries(std::move(gmSeries));
  fig.addSeries(std::move(ptlSeries));
  FigArchive archive("fig11_pww_wait_time", args);
  archive.addPww("pww/gm/100 KB", backend::gmMachine(), intervals, gmRuns);
  archive.addPww("pww/portals/100 KB", backend::portalsMachine(), intervals,
                 portalsRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
