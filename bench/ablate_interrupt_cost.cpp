// Ablation — Portals per-fragment interrupt cost (coalescing).
//
// The paper attributes Portals' low availability to per-packet interrupts
// and kernel copies. Sweeping the per-fragment interrupt cost (as if the
// kernel coalesced interrupts, or the NIC batched packets) moves the
// bandwidth/availability trade-off: cheaper interrupts buy both more
// plateau bandwidth and more availability — quantifying how much of the
// GM/Portals gap is interrupt overhead rather than architecture.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "ablate_interrupt_cost",
                   "Portals bandwidth/availability vs per-fragment ISR cost");
  if (!args.parsedOk) return args.exitCode;

  report::Figure fig(
      "ablate_interrupt_cost",
      "Ablation: Portals Plateau vs Per-Fragment Interrupt Cost (100 KB)",
      "per_fragment_isr_us", "MBps_or_availability_x100");
  fig.paperExpectation(
      "cheaper interrupts raise plateau bandwidth and availability "
      "together; the paper's ~20 us regime is what caps Portals at "
      "~55 MB/s with ~5-10% availability");

  report::Series bw{"plateau_bandwidth_MBps", {}, {}};
  report::Series avail{"availability_x100_at_plateau", {}, {}};
  for (const double isrUs : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    auto machine = backend::portalsMachine();
    machine.portals.nic.perFragRx = isrUs * 1e-6;
    auto base = presets::pollingBase(100_KB);
    base.pollInterval = 10'000;  // on the plateau
    const auto pt = runPollingPoint(machine, base);
    bw.xs.push_back(isrUs);
    bw.ys.push_back(toMBps(pt.bandwidthBps));
    avail.xs.push_back(isrUs);
    avail.ys.push_back(100.0 * pt.availability);
  }

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::checkNearlyMonotone(
      "bandwidth falls as interrupts get more expensive", bw.ys,
      /*increasing=*/false, 1.0));
  checks.push_back(report::ShapeCheck{
      "cheap interrupts recover most of the GM gap",
      bw.ys.front() > 75.0,
      strFormat("bw at 2 us ISR = %.1f MB/s (GM ~87)", bw.ys.front())});
  checks.push_back(report::ShapeCheck{
      "paper regime (20 us) sits near the paper's plateau",
      bw.ys[3] > 45.0 && bw.ys[3] < 65.0,
      strFormat("bw at 20 us ISR = %.1f MB/s", bw.ys[3])});
  fig.addSeries(std::move(bw));
  fig.addSeries(std::move(avail));
  return finishFigure(fig, checks, args);
}
