// Figure 6 — PWW method: CPU availability vs work interval, Portals.
//
// Paper: unlike the polling graph (Fig 4) there is NO initial plateau —
// PWW waits for the batch regardless, so short work intervals are
// dominated by post+wait time and availability starts near zero, rising
// steadily as the work interval grows.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig06",
      "PWW method: CPU availability vs work interval (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::portalsMachine();
  const auto fam = runPwwFamily(machine, presets::paperMessageSizes(),
                                args.pointsPerDecade, -1.0, args.runOptions());

  report::Figure fig("fig06", "PWW Method: CPU Availability (Portals)",
                     "work_interval_iters", "cpu_availability");
  fig.logX().yRange(0.0, 1.0).paperExpectation(
      "no low plateau (PWW waits regardless): availability starts near 0 "
      "at short work intervals and rises steadily toward 1");

  std::vector<report::ShapeCheck> checks;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeSeries(sizeLabel(fam.sizes[i]), fam.intervals,
                        fam.results[i],
                        [](const PwwPoint& p) { return p.availability; });
    checks.push_back(report::checkRisesFromLowToHigh(
        "availability rises low->high (" + s.name + ")", s.ys, 0.30, 0.85));
    checks.push_back(report::checkNearlyMonotone(
        "availability ~monotone in work interval (" + s.name + ")", s.ys,
        /*increasing=*/true, 0.08));
    fig.addSeries(std::move(s));
  }
  FigArchive archive("fig06_pww_avail_portals", args);
  archivePwwFamily(archive, "pww/portals", machine, fam);
  archive.write();
  return finishFigure(fig, checks, args);
}
