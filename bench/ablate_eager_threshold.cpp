// Ablation — GM eager/rendezvous threshold.
//
// The paper's Fig 14 anomaly (10 KB bandwidth only at reduced
// availability) comes from the eager protocol's ~45 us host-side send
// copy below the 16 KB threshold. Sweeping the threshold moves the
// anomaly: with the threshold below 10 KB, the 10 KB messages take the
// rendezvous path and regain availability at peak bandwidth; with a huge
// threshold, even 100 KB messages pay host copies and lose availability.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

namespace {

// Peak-bandwidth availability: availability of the sweep point with the
// highest bandwidth.
double availAtPeak(const std::vector<PollingPoint>& pts) {
  double bestBw = -1, avail = 0;
  for (const auto& p : pts) {
    if (p.bandwidthBps > bestBw) {
      bestBw = p.bandwidthBps;
      avail = p.availability;
    }
  }
  return avail;
}

}  // namespace

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(argc, argv, "ablate_eager_threshold",
                                    "GM eager threshold vs availability");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = logSweep(1'000, 3'000'000, 2);
  report::Figure fig(
      "ablate_eager_threshold",
      "Ablation: GM Availability at Peak Bandwidth vs Eager Threshold",
      "eager_threshold_KB", "availability_at_peak_bw");
  fig.paperExpectation(
      "messages below the threshold (eager, host-copied) reach peak "
      "bandwidth only at reduced availability; above it (rendezvous, NIC "
      "DMA) availability at peak is high");

  std::vector<report::ShapeCheck> checks;
  for (const Bytes msg : {10_KB, 100_KB}) {
    report::Series s;
    s.name = fmtBytes(msg) + " msgs";
    for (const Bytes thr : {2_KB, 8_KB, 16_KB, 64_KB, 512_KB}) {
      auto machine = backend::gmMachine();
      machine.gm.eagerThreshold = thr;
      auto base = presets::pollingBase(msg);
      const auto pts = runPollingSweep(machine, sweepOver(base, intervals),
                                       args.runOptions());
      s.xs.push_back(static_cast<double>(thr) / 1024.0);
      s.ys.push_back(availAtPeak(pts));
    }
    fig.addSeries(s);
    // Below-threshold points must show availability clearly lower than
    // above-threshold points.
    const double eagerSide = s.ys.back();   // thr = 512 KB: always eager
    const double rndvSide = s.ys.front();   // thr = 2 KB: always rendezvous
    checks.push_back(report::ShapeCheck{
        "rendezvous regime beats eager regime on availability (" + s.name +
            ")",
        rndvSide > eagerSide + 0.1,
        strFormat("rndv=%.2f eager=%.2f", rndvSide, eagerSide)});
  }
  return finishFigure(fig, checks, args);
}
