// Figure 7 — PWW method: bandwidth vs work interval, Portals.
//
// Paper: compared with the polling method's bandwidth (Fig 5), the
// decline with growing work interval is more gradual — PWW cannot hold
// the peak plateau as long because each cycle serializes post/work/wait.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;

int main(int argc, char** argv) {
  const FigArgs args = parseFigArgs(
      argc, argv, "fig07", "PWW method: bandwidth vs work interval (Portals)");
  if (!args.parsedOk) return args.exitCode;

  const auto machine = backend::portalsMachine();
  const auto fam = runPwwFamily(machine, presets::paperMessageSizes(),
                                args.pointsPerDecade, -1.0, args.runOptions());

  report::Figure fig("fig07", "PWW Method: Bandwidth (Portals)",
                     "work_interval_iters", "bandwidth_MBps");
  fig.logX().paperExpectation(
      "bandwidth declines gradually as the work interval grows; larger "
      "messages sustain more bandwidth at every interval");

  std::vector<report::ShapeCheck> checks;
  std::vector<report::Series> bySize;
  for (std::size_t i = 0; i < fam.sizes.size(); ++i) {
    auto s = makeSeries(
        sizeLabel(fam.sizes[i]), fam.intervals, fam.results[i],
        [](const PwwPoint& p) { return toMBps(p.bandwidthBps); });
    checks.push_back(report::checkEndsBelow(
        "bandwidth falls off at long work intervals (" + s.name + ")", s.ys,
        0.25 * *std::max_element(s.ys.begin(), s.ys.end())));
    bySize.push_back(s);
    fig.addSeries(std::move(s));
  }
  // Ordering: at the shortest work interval, larger message => more
  // bandwidth (paper's series never cross at the left edge).
  for (std::size_t i = 1; i < bySize.size(); ++i) {
    report::ShapeCheck c{
        "larger message >= smaller at left edge (" + bySize[i].name + ")",
        bySize[i].ys.front() >= bySize[i - 1].ys.front(),
        strFormat("%.1f vs %.1f MB/s", bySize[i].ys.front(),
                  bySize[i - 1].ys.front())};
    checks.push_back(std::move(c));
  }
  FigArchive archive("fig07_pww_bw_portals", args);
  archivePwwFamily(archive, "pww/portals", machine, fam);
  archive.write();
  return finishFigure(fig, checks, args);
}
