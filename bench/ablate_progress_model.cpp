// Ablation — the application-offload knob itself.
//
// DESIGN.md decision 3: rendezvous progressed only inside library calls
// (GM) vs autonomously (Portals) is the single mechanism behind the
// paper's offload dichotomy. This ablation holds everything else fixed
// (same fabric, same GM cost model) and compares the PWW wait phase of
// the standard GM against a GM variant whose work phase contains library
// calls at varying density — interpolating between "no offload" and
// "effectively offloaded" and showing the wait phase drain accordingly.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "ablate_progress_model",
                   "GM PWW wait phase vs in-work progress-call density");
  if (!args.parsedOk) return args.exitCode;

  report::Figure fig(
      "ablate_progress_model",
      "Ablation: GM Wait Phase vs Mid-Work Progress Call Position",
      "test_call_position_fraction", "wait_time_us");
  fig.paperExpectation(
      "one progress call early in a long work phase drains the wait (the "
      "NIC streams during the remaining work); a call near the end leaves "
      "almost the full wait (nothing left to overlap with)");

  // A long work phase: ~8 ms, far beyond the ~1.2 ms exchange time.
  report::Series s{"wait_us", {}, {}};
  for (const double frac : {0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98}) {
    auto base = presets::pwwBase(100_KB);
    base.workInterval = 2'000'000;
    base.testCallAtFraction = frac;
    const auto pt = runPwwPoint(backend::gmMachine(), base);
    s.xs.push_back(frac);
    s.ys.push_back(pt.avgWaitPerMsg * 1e6);
  }
  // Reference: no call at all.
  auto plain = presets::pwwBase(100_KB);
  plain.workInterval = 2'000'000;
  const auto noCall = runPwwPoint(backend::gmMachine(), plain);

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::ShapeCheck{
      "early call drains the wait phase", s.ys.front() < 100.0,
      strFormat("wait=%.0f us with call at 2%% of work", s.ys.front())});
  checks.push_back(report::ShapeCheck{
      "late call approaches the no-call wait",
      s.ys.back() > 0.5 * noCall.avgWaitPerMsg * 1e6,
      strFormat("wait=%.0f us at 98%% vs %.0f us with no call", s.ys.back(),
                noCall.avgWaitPerMsg * 1e6)});
  checks.push_back(report::checkNearlyMonotone(
      "wait grows as the call moves later", s.ys, /*increasing=*/true,
      30.0));
  fig.addSeries(std::move(s));
  return finishFigure(fig, checks, args);
}
