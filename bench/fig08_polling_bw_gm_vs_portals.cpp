// Figure 8 — Polling method: bandwidth, GM vs Portals (100 KB).
//
// Paper: GM (OS-bypass, no interrupts, no kernel copies) sustains
// ~88 MB/s; kernel-based Portals is capped near ~55 MB/s by per-packet
// interrupts and kernel-buffer copies on the same hardware.
#include "fig_common.hpp"

using namespace comb;
using namespace comb::bench;
using namespace comb::units;

int main(int argc, char** argv) {
  const FigArgs args =
      parseFigArgs(argc, argv, "fig08",
                   "Polling method: bandwidth, GM vs Portals (100 KB)");
  if (!args.parsedOk) return args.exitCode;

  const auto intervals = presets::pollSweep(args.pointsPerDecade);
  const auto spec = sweepOver(presets::pollingBase(100_KB), intervals);
  const auto gmRuns =
      runPollingSweepReps(backend::gmMachine(), spec, args.runOptions());
  const auto portalsRuns =
      runPollingSweepReps(backend::portalsMachine(), spec, args.runOptions());
  const auto gm = canonicalPoints(gmRuns);
  const auto portals = canonicalPoints(portalsRuns);

  report::Figure fig("fig08", "Polling Method: Bandwidth, GM vs Portals",
                     "poll_interval_iters", "bandwidth_MBps");
  fig.logX().paperExpectation(
      "GM plateau ~88 MB/s, Portals ~50-60 MB/s; GM wins ~1.5-1.8x at the "
      "plateau; both decline at large poll intervals");

  auto gmSeries = makeSeries(
      "GM", intervals, gm,
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  auto ptlSeries = makeSeries(
      "Portals", intervals, portals,
      [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });

  std::vector<report::ShapeCheck> checks;
  checks.push_back(report::checkPeakRatio("GM beats Portals by ~1.4-1.9x",
                                          gmSeries.ys, ptlSeries.ys, 1.3,
                                          2.0));
  checks.push_back(report::checkPlateauThenDecline("GM plateau then decline",
                                                   gmSeries.ys, 0.2, 0.5));
  checks.push_back(report::checkPlateauThenDecline(
      "Portals plateau then decline", ptlSeries.ys, 0.2, 0.5));
  {
    const double gmPeak =
        *std::max_element(gmSeries.ys.begin(), gmSeries.ys.end());
    checks.push_back(report::ShapeCheck{
        "GM peak in paper band (80-95 MB/s)", gmPeak >= 80.0 && gmPeak <= 95.0,
        strFormat("peak=%.1f MB/s", gmPeak)});
  }
  fig.addSeries(std::move(gmSeries));
  fig.addSeries(std::move(ptlSeries));
  FigArchive archive("fig08_polling_bw_gm_vs_portals", args);
  archive.addPolling("polling/gm/100 KB", backend::gmMachine(), intervals,
                     gmRuns);
  archive.addPolling("polling/portals/100 KB", backend::portalsMachine(),
                     intervals, portalsRuns);
  archive.write();
  return finishFigure(fig, checks, args);
}
