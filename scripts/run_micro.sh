#!/usr/bin/env bash
# Simulator-core performance proof for the allocation-free hot path
# (pooled events, inline event closures, pooled wire payloads):
#
#   1. Release-build bench/micro_sim plus two representative figure
#      sweeps — fig04 (event/interrupt bound) and fig08 (packet bound);
#   2. run the google-benchmark suite to JSON;
#   3. wall-clock both figure sweeps at --jobs 1 (bash's EPOCHREALTIME —
#      the container has no /usr/bin/time);
#   4. fold the numbers into BENCH_sim_core.json via stdlib python3:
#      the "current" block is refreshed, the committed "baseline" block
#      (measured on the pre-optimization tree) is preserved, and the
#      per-benchmark speedups are printed.
#
# Benchmark numbers are only meaningful on an otherwise idle machine.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON=BENCH_sim_core.json
BUILD=build-perf
FIGS=(fig04_polling_avail_portals fig08_polling_bw_gm_vs_portals)

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target micro_sim "${FIGS[@]}"

raw=$(mktemp) wall=$(mktemp)
trap 'rm -f "$raw" "$wall"' EXIT

"$BUILD"/bench/micro_sim --benchmark_out="$raw" --benchmark_out_format=json

for fig in "${FIGS[@]}"; do
  scratch=$(mktemp -d)
  start=$EPOCHREALTIME
  "$BUILD"/bench/"$fig" --jobs 1 --csv --out "$scratch" >/dev/null
  end=$EPOCHREALTIME
  rm -rf "$scratch"
  echo "$fig $start $end" >> "$wall"
done

python3 - "$raw" "$wall" "$BENCH_JSON" <<'PY'
import json, sys

raw_path, wall_path, out_path = sys.argv[1:4]

with open(raw_path) as f:
    raw = json.load(f)
current = {"benchmarks": {}, "figure_wallclock_seconds": {}}
for b in raw["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue  # skip aggregate rows
    current["benchmarks"][b["name"]] = {
        "items_per_second": round(b.get("items_per_second", 0.0), 1),
        "real_time_ns": round(b["real_time"], 1),
    }
with open(wall_path) as f:
    for line in f:
        fig, start, end = line.split()
        current["figure_wallclock_seconds"][fig] = round(
            float(end) - float(start), 3)

try:
    with open(out_path) as f:
        report = json.load(f)
except FileNotFoundError:
    report = {}
report["current"] = current
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")

base = report.get("baseline", {})
print(f"\n{'benchmark':<42} {'baseline':>12} {'current':>12} {'speedup':>8}")
for name, cur in current["benchmarks"].items():
    b = base.get("benchmarks", {}).get(name, {}).get("items_per_second")
    c = cur["items_per_second"]
    ratio = f"{c / b:.2f}x" if b else "-"
    bs = f"{b / 1e6:.2f}M/s" if b else "-"
    print(f"{name:<42} {bs:>12} {c / 1e6:>10.2f}M/s {ratio:>8}")
for fig, secs in current["figure_wallclock_seconds"].items():
    b = base.get("figure_wallclock_seconds", {}).get(fig)
    ratio = f"{b / secs:.2f}x" if b else "-"
    bs = f"{b:.2f}s" if b else "-"
    print(f"{fig:<42} {bs:>12} {secs:>11.2f}s {ratio:>8}")
print(f"\nwrote {out_path}")
PY
