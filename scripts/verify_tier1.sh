#!/usr/bin/env bash
# Tier-1 verify flow:
#   1. standard build + the full test suite;
#   2. rebuild the concurrency-sensitive pieces under ThreadSanitizer
#      (-DCOMB_SANITIZE=thread) and run the thread-pool / parallel-sweep /
#      logger tests, which exercise every cross-thread interaction the
#      parallel sweep executor introduces — plus the fault-injection
#      tests (`faults` label), whose parallel sweeps run retransmission
#      machinery on every worker thread.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

cmake -B build-tsan -S . -DCOMB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target test_thread_pool test_runner test_log \
  test_thread_comb test_fault test_fault_injection
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|ParallelFor|ParallelSweep|LogSweep|Log\.|Runner')
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" -L faults)

echo "tier-1 verify: OK (standard suite + TSan concurrency/fault tests)"
