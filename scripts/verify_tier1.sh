#!/usr/bin/env bash
# Tier-1 verify flow:
#   1. standard build + the full test suite;
#   2. rebuild the concurrency-sensitive pieces under ThreadSanitizer
#      (-DCOMB_SANITIZE=thread) and run the thread-pool / parallel-sweep /
#      logger tests, which exercise every cross-thread interaction the
#      parallel sweep executor introduces — plus the fault-injection
#      tests (`faults` label), whose parallel sweeps run retransmission
#      machinery on every worker thread — and the tracing/observability
#      tests (`trace` label), whose TraceLog rides along with parallel
#      traced-point runs — and the sharded-PDES core tests (`pdes`
#      label), whose window loop drives a persistent worker team through
#      a lock-free epoch barrier and folds cross-shard events back in
#      from per-pair mailbox rings (test_window_barrier exercises the
#      barrier/ring primitives directly; test_executor_alloc counts
#      operator-new calls in the steady-state loop);
#   3. rebuild the tracing/observability suites under AddressSanitizer
#      (-DCOMB_SANITIZE=address) and run the `trace`-labelled tests: the
#      TraceLog ring recycles slots and interns labels, exactly the kind
#      of code ASan exists to check;
#   4. rebuild the stats/archive/compare engine under UBSan
#      (-DCOMB_SANITIZE=undefined) and run the `stats`-labelled tests:
#      percentile interpolation, bootstrap index arithmetic and the
#      Mann-Whitney normal approximation are dense in the float/integer
#      conversions UBSan checks;
#   5. with --perf: additionally run the simulator-core micro-benchmark
#      suite in Release (scripts/run_micro.sh), refreshing the "current"
#      block of BENCH_sim_core.json against the recorded baseline.
#
# Every stage runs even when an earlier one fails; the script prints a
# stage-by-stage PASS/FAIL summary and exits non-zero if anything failed.
# A ctest selection (-L label / -R regex) matching zero tests is itself a
# failure — a renamed label must not silently skip a sanitizer stage.
set -uo pipefail
cd "$(dirname "$0")/.."

PERF=0
for arg in "$@"; do
  case "$arg" in
    --perf) PERF=1 ;;
    *) echo "unknown option: $arg (supported: --perf)" >&2; exit 2 ;;
  esac
done

STAGES=()
RESULTS=()
FAILED=0

# run_stage NAME CMD...: run CMD, record PASS/FAIL, keep going.
run_stage() {
  local name=$1
  shift
  echo
  echo "=== stage: $name ==="
  if "$@"; then
    STAGES+=("$name"); RESULTS+=(PASS)
  else
    STAGES+=("$name"); RESULTS+=("FAIL (exit $?)")
    FAILED=1
  fi
}

# ctest_checked BUILD_DIR CTEST_ARGS...: fail when the selection matches
# zero tests, then run it.
ctest_checked() {
  local dir=$1
  shift
  local n
  n=$(cd "$dir" && ctest -N "$@" | sed -n 's/^Total Tests: //p')
  if [[ -z "$n" || "$n" == 0 ]]; then
    echo "ctest selection '$*' matched no tests in $dir" >&2
    return 1
  fi
  (cd "$dir" && ctest --output-on-failure -j"$(nproc)" "$@")
}

build_standard() {
  cmake -B build -S . && cmake --build build -j
}
build_tsan() {
  cmake -B build-tsan -S . -DCOMB_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build-tsan -j --target test_thread_pool test_runner \
      test_log test_thread_comb test_fault test_fault_injection \
      test_tracelog test_trace_export test_audit test_executor test_pdes \
      test_window_barrier test_executor_alloc test_tail_observability \
      test_progress_thread test_rdma
}
build_asan() {
  cmake -B build-asan -S . -DCOMB_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build-asan -j --target test_tracelog test_trace_export \
      test_audit test_progress_thread test_rdma
}
build_ubsan() {
  cmake -B build-ubsan -S . -DCOMB_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build-ubsan -j --target test_stats test_json test_archive \
      test_compare test_reps
}

run_stage "build"            build_standard
run_stage "tests"            ctest_checked build
run_stage "tsan build"       build_tsan
run_stage "tsan concurrency" ctest_checked build-tsan \
  -R 'ThreadPool|ParallelFor|ParallelSweep|LogSweep|Log\.|Runner'
run_stage "tsan faults"      ctest_checked build-tsan -L faults
run_stage "tsan trace"       ctest_checked build-tsan -L trace
run_stage "tsan pdes"        ctest_checked build-tsan -L pdes
run_stage "asan build"       build_asan
run_stage "asan trace"       ctest_checked build-asan -L trace
run_stage "ubsan build"      build_ubsan
run_stage "ubsan stats"      ctest_checked build-ubsan -L stats
if [[ "$PERF" == 1 ]]; then
  run_stage "perf micro"     scripts/run_micro.sh
fi

echo
echo "=== tier-1 verify summary ==="
for i in "${!STAGES[@]}"; do
  printf '  %-18s %s\n' "${STAGES[$i]}" "${RESULTS[$i]}"
done
if [[ "$FAILED" != 0 ]]; then
  echo "tier-1 verify: FAILED"
  exit 1
fi
echo "tier-1 verify: OK"
