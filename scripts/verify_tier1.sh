#!/usr/bin/env bash
# Tier-1 verify flow:
#   1. standard build + the full test suite;
#   2. rebuild the concurrency-sensitive pieces under ThreadSanitizer
#      (-DCOMB_SANITIZE=thread) and run the thread-pool / parallel-sweep /
#      logger tests, which exercise every cross-thread interaction the
#      parallel sweep executor introduces — plus the fault-injection
#      tests (`faults` label), whose parallel sweeps run retransmission
#      machinery on every worker thread — and the tracing/observability
#      tests (`trace` label), whose TraceLog rides along with parallel
#      traced-point runs;
#   3. rebuild the tracing/observability suites under AddressSanitizer
#      (-DCOMB_SANITIZE=address) and run the `trace`-labelled tests: the
#      TraceLog ring recycles slots and interns labels, exactly the kind
#      of code ASan exists to check;
#   4. with --perf: additionally run the simulator-core micro-benchmark
#      suite in Release (scripts/run_micro.sh), refreshing the "current"
#      block of BENCH_sim_core.json against the recorded baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

PERF=0
for arg in "$@"; do
  case "$arg" in
    --perf) PERF=1 ;;
    *) echo "unknown option: $arg (supported: --perf)" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

cmake -B build-tsan -S . -DCOMB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j --target test_thread_pool test_runner test_log \
  test_thread_comb test_fault test_fault_injection \
  test_tracelog test_trace_export test_audit
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|ParallelFor|ParallelSweep|LogSweep|Log\.|Runner')
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" -L faults)
(cd build-tsan && ctest --output-on-failure -j"$(nproc)" -L trace)

cmake -B build-asan -S . -DCOMB_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j --target test_tracelog test_trace_export test_audit
(cd build-asan && ctest --output-on-failure -j"$(nproc)" -L trace)

if [[ "$PERF" == 1 ]]; then
  scripts/run_micro.sh
fi

echo "tier-1 verify: OK (standard suite + TSan concurrency/fault/trace tests + ASan trace tests)"
